//! Per-vector label metadata for filtered search (DESIGN.md §12).
//!
//! Production vector queries carry metadata predicates ("only documents in
//! my tenant", "only products in stock"). The reproduction models the
//! common case — a **small fixed vocabulary** of at most 32 labels — so a
//! vector's label set is one `u32` bitmask and a predicate is a mask
//! intersection: cheap enough to evaluate per visited vertex inside the
//! beam-search inner loop.
//!
//! [`Labels`] is the per-vector store; it lives next to a dataset (or an
//! index's code store) and follows the same positional-id discipline, with
//! [`Labels::subset`] for shard partitioning and [`Labels::compact`] for
//! the streaming index's consolidation remap. [`LabelPredicate`] is the
//! `Copy` query-side half that travels through serving requests.

/// The largest label vocabulary a `u32` mask can hold.
pub const MAX_VOCAB: usize = 32;

/// A query-side predicate over label masks: a vector matches when its
/// label set intersects the predicate's. `Copy` and 8 bytes, so scheduled
/// requests can carry one by value through every serving layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LabelPredicate {
    mask: u32,
}

impl LabelPredicate {
    /// Matches vectors carrying `label`.
    pub fn single(label: usize) -> Self {
        assert!(label < MAX_VOCAB, "label {label} out of vocabulary range");
        Self { mask: 1 << label }
    }

    /// Matches vectors carrying any of `labels`.
    pub fn any_of(labels: &[usize]) -> Self {
        let mut mask = 0u32;
        for &l in labels {
            assert!(l < MAX_VOCAB, "label {l} out of vocabulary range");
            mask |= 1 << l;
        }
        assert!(mask != 0, "a predicate needs at least one label");
        Self { mask }
    }

    /// Matches every labelled vector (all 32 possible labels).
    pub fn all() -> Self {
        Self { mask: u32::MAX }
    }

    /// Builds a predicate from a raw label bitmask (must be non-zero).
    pub fn from_mask(mask: u32) -> Self {
        assert!(mask != 0, "a predicate needs at least one label");
        Self { mask }
    }

    /// The raw label bitmask.
    pub fn mask(&self) -> u32 {
        self.mask
    }

    /// Whether a vector with label set `mask` satisfies this predicate.
    #[inline]
    pub fn matches(&self, mask: u32) -> bool {
        self.mask & mask != 0
    }
}

/// Per-vector label sets over a vocabulary of at most [`MAX_VOCAB`]
/// labels: `masks[i]` is vector `i`'s label bitmask.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Labels {
    masks: Vec<u32>,
    vocab: usize,
}

impl Labels {
    /// An empty store over a `vocab`-label vocabulary.
    pub fn new(vocab: usize) -> Self {
        assert!(
            (1..=MAX_VOCAB).contains(&vocab),
            "vocabulary must be 1..={MAX_VOCAB}, got {vocab}"
        );
        Self {
            masks: Vec::new(),
            vocab,
        }
    }

    /// Wraps existing masks; every mask must fit the vocabulary.
    pub fn from_masks(vocab: usize, masks: Vec<u32>) -> Self {
        let mut l = Self::new(vocab);
        for &m in &masks {
            l.check_mask(m);
        }
        l.masks = masks;
        l
    }

    fn check_mask(&self, mask: u32) {
        if self.vocab < MAX_VOCAB {
            assert!(
                mask < (1u32 << self.vocab),
                "mask {mask:#x} exceeds the {}-label vocabulary",
                self.vocab
            );
        }
    }

    /// Appends one vector's label set (positional id = push order, the
    /// same discipline as the code stores).
    pub fn push(&mut self, mask: u32) {
        self.check_mask(mask);
        self.masks.push(mask);
    }

    /// Appends a single-label vector.
    pub fn push_label(&mut self, label: usize) {
        assert!(label < self.vocab, "label {label} out of vocabulary");
        self.masks.push(1 << label);
    }

    /// Vector `i`'s label bitmask.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        self.masks[i]
    }

    /// Labelled vector count.
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Whether vector `i` satisfies `pred`.
    #[inline]
    pub fn matches(&self, i: usize, pred: LabelPredicate) -> bool {
        pred.matches(self.masks[i])
    }

    /// How many vectors satisfy `pred`.
    pub fn count_matching(&self, pred: LabelPredicate) -> usize {
        self.masks.iter().filter(|&&m| pred.matches(m)).count()
    }

    /// The fraction of vectors satisfying `pred` — the predicate's
    /// measured selectivity on this corpus (1.0 on an empty store).
    pub fn selectivity(&self, pred: LabelPredicate) -> f32 {
        if self.masks.is_empty() {
            return 1.0;
        }
        self.count_matching(pred) as f32 / self.masks.len() as f32
    }

    /// The label sets of `indices`, in order — the labels-side mirror of
    /// `Dataset::subset` for shard partitioning.
    pub fn subset(&self, indices: &[usize]) -> Labels {
        Labels {
            masks: indices.iter().map(|&i| self.masks[i]).collect(),
            vocab: self.vocab,
        }
    }

    /// The label sets of `survivors` (old positional ids), in order — the
    /// labels-side mirror of the code stores' consolidation compaction.
    pub fn compact(&self, survivors: &[u32]) -> Labels {
        Labels {
            masks: survivors.iter().map(|&i| self.masks[i as usize]).collect(),
            vocab: self.vocab,
        }
    }

    /// A vertex-accept closure over positional ids, for composing into a
    /// `VertexFilter`.
    pub fn accept_fn(&self, pred: LabelPredicate) -> impl Fn(u32) -> bool + '_ {
        move |v: u32| pred.matches(self.masks[v as usize])
    }

    /// Heap bytes held.
    pub fn memory_bytes(&self) -> usize {
        self.masks.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_match_by_intersection() {
        let mut labels = Labels::new(4);
        labels.push_label(0);
        labels.push(0b1010);
        labels.push_label(3);
        let p0 = LabelPredicate::single(0);
        let p13 = LabelPredicate::any_of(&[1, 3]);
        assert!(labels.matches(0, p0));
        assert!(!labels.matches(1, p0));
        assert!(labels.matches(1, p13));
        assert!(labels.matches(2, p13));
        assert_eq!(labels.count_matching(p13), 2);
        assert!((labels.selectivity(p0) - 1.0 / 3.0).abs() < 1e-6);
        let all = LabelPredicate::all();
        assert!((0..labels.len()).all(|i| labels.matches(i, all)));
    }

    #[test]
    fn subset_and_compact_preserve_order() {
        let labels = Labels::from_masks(8, vec![1, 2, 4, 8, 16]);
        let sub = labels.subset(&[4, 0, 2]);
        assert_eq!(sub.get(0), 16);
        assert_eq!(sub.get(1), 1);
        assert_eq!(sub.get(2), 4);
        let compacted = labels.compact(&[1, 3]);
        assert_eq!(compacted.len(), 2);
        assert_eq!(compacted.get(0), 2);
        assert_eq!(compacted.get(1), 8);
        assert_eq!(compacted.vocab(), 8);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_mask_rejected() {
        let mut labels = Labels::new(2);
        labels.push(0b100);
    }

    #[test]
    fn accept_fn_tracks_masks() {
        let labels = Labels::from_masks(3, vec![1, 2, 4]);
        let accept = labels.accept_fn(LabelPredicate::single(1));
        assert!(!accept(0));
        assert!(accept(1));
        assert!(!accept(2));
    }
}
