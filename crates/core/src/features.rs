//! The sampling-based feature extractor (paper §5).
//!
//! **Neighborhood features** (Alg. 1, "n-propagation sampling"): for a
//! vertex `v`, collect its n-hop neighborhood `N_n(v)`, rank it by distance
//! to `v`'s original vector, and draw a positive from the top `k_pos` and a
//! negative from the next `k_neg` — the hard-negative band that makes the
//! triplets informative (Def. 4–5).
//!
//! **Routing features** (Alg. 2): run beam search with the *current learned
//! quantizer* on sampled queries and record every ranked candidate set
//! `b_i`. Each decision is labelled with the candidate that is truly
//! closest to the query (exact distance) — the correct next hop the routing
//! loss (Eq. 9–10) teaches the quantizer to rank first.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rpq_data::Dataset;
use rpq_graph::{beam_search_recording, DistanceEstimator, ProximityGraph, SearchScratch};
use rpq_linalg::distance::sq_l2;

/// A contrastive triplet of vertex ids (paper Def. 4–5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Triplet {
    pub anchor: u32,
    pub pos: u32,
    pub neg: u32,
}

/// Alg. 1 parameters.
#[derive(Clone, Copy, Debug)]
pub struct TripletSamplerConfig {
    /// Propagation depth n.
    pub n_hops: usize,
    /// Positive-scope size k_pos.
    pub k_pos: usize,
    /// Negative-scope size k_neg.
    pub k_neg: usize,
    pub seed: u64,
}

impl Default for TripletSamplerConfig {
    fn default() -> Self {
        Self {
            n_hops: 2,
            k_pos: 8,
            k_neg: 16,
            seed: 0,
        }
    }
}

/// Samples `count` triplets by n-propagation (paper Alg. 1). Anchors are
/// drawn uniformly; vertices whose n-hop neighborhood is too small to
/// provide both scopes are skipped.
pub fn sample_triplets(
    graph: &ProximityGraph,
    data: &Dataset,
    cfg: &TripletSamplerConfig,
    count: usize,
) -> Vec<Triplet> {
    assert_eq!(graph.len(), data.len(), "graph/dataset size mismatch");
    assert!(
        cfg.k_pos >= 1,
        "k_pos must be >= 1 (paper: k_pos ∈ [1, |N_n(v)|))"
    );
    assert!(cfg.k_neg >= 1, "k_neg must be >= 1");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n = graph.len();
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0usize;
    let max_attempts = count.saturating_mul(20).max(64);
    while out.len() < count && attempts < max_attempts {
        attempts += 1;
        let v = rng.gen_range(0..n) as u32;
        // Lines 2–10: collect N_n(v).
        let mut hood = graph.n_hop_neighborhood(v, cfg.n_hops);
        if hood.len() < 2 {
            continue;
        }
        // Line 11: ascending by distance to the anchor's original vector.
        let anchor_vec = data.get(v as usize);
        hood.sort_by(|&a, &b| {
            sq_l2(anchor_vec, data.get(a as usize))
                .total_cmp(&sq_l2(anchor_vec, data.get(b as usize)))
                .then(a.cmp(&b))
        });
        // Line 12: resize to k_pos + k_neg.
        hood.truncate(cfg.k_pos + cfg.k_neg);
        let k_pos_eff = cfg.k_pos.min(hood.len().saturating_sub(1)).max(1);
        if hood.len() <= k_pos_eff {
            continue;
        }
        // Lines 14–19: positive from the top scope, negative from the rest.
        let pos = hood[rng.gen_range(0..k_pos_eff)];
        let neg = hood[rng.gen_range(k_pos_eff..hood.len())];
        out.push(Triplet {
            anchor: v,
            pos,
            neg,
        });
    }
    out
}

/// One routing decision with its supervision label.
#[derive(Clone, Debug)]
pub struct RoutingFeature {
    /// Id of the query vector (an index into the dataset; Alg. 2 line 1
    /// samples queries from the dataset itself).
    pub query: u32,
    /// Ranked candidate ids (the recorded `b_i`), exactly `h` of them.
    pub candidates: Vec<u32>,
    /// Index into `candidates` of the truly closest vertex to the query —
    /// the correct next-hop choice the loss maximises (Eq. 9).
    pub best: usize,
}

/// Alg. 2 parameters.
#[derive(Clone, Copy, Debug)]
pub struct RoutingSamplerConfig {
    /// Number of query samples.
    pub n_queries: usize,
    /// Beam width h (the size of every recorded candidate set).
    pub h: usize,
    /// Cap on decisions kept per query (keeps features balanced across
    /// queries; 0 = unlimited).
    pub max_decisions_per_query: usize,
    pub seed: u64,
}

impl Default for RoutingSamplerConfig {
    fn default() -> Self {
        Self {
            n_queries: 32,
            h: 16,
            max_decisions_per_query: 24,
            seed: 0,
        }
    }
}

/// Samples routing features by running the paper's Alg. 2 with the supplied
/// estimator factory (the *current* learned quantizer's ADC distances) and
/// labelling each recorded decision with the exact-distance best candidate.
///
/// `make_estimator` receives a query vector (borrowed from `data`) and
/// returns the estimator the beam search routes with — this is what makes
/// the features reflect the quantizer being trained rather than ideal
/// routing.
pub fn sample_routing_features<'a>(
    graph: &ProximityGraph,
    data: &'a Dataset,
    make_estimator: &dyn Fn(&'a [f32]) -> Box<dyn DistanceEstimator + 'a>,
    cfg: &RoutingSamplerConfig,
) -> Vec<RoutingFeature> {
    assert_eq!(graph.len(), data.len(), "graph/dataset size mismatch");
    assert!(cfg.h >= 2, "beam width h must be >= 2 to rank anything");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n = data.len();
    let mut scratch = SearchScratch::new();
    let mut out = Vec::new();
    for _ in 0..cfg.n_queries {
        let qid = rng.gen_range(0..n) as u32;
        let qvec = data.get(qid as usize).to_vec();
        let est = make_estimator(data.get(qid as usize));
        let (_, decisions) = beam_search_recording(graph, &est, cfg.h, &mut scratch);
        let mut kept = 0usize;
        for d in decisions {
            // Only full beams: the loss batches decisions as fixed h-way
            // softmaxes.
            if d.ranked.len() != cfg.h {
                continue;
            }
            // Label: the candidate truly closest to the query.
            let best = d
                .ranked
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| {
                    sq_l2(&qvec, data.get(a as usize))
                        .total_cmp(&sq_l2(&qvec, data.get(b as usize)))
                })
                .map(|(i, _)| i)
                .expect("non-empty ranked set");
            out.push(RoutingFeature {
                query: qid,
                candidates: d.ranked,
                best,
            });
            kept += 1;
            if cfg.max_decisions_per_query > 0 && kept >= cfg.max_decisions_per_query {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_data::synth::{SynthConfig, ValueTransform};
    use rpq_graph::{DistanceEstimator, ExactEstimator, VamanaConfig};

    fn setup(n: usize, seed: u64) -> (Dataset, ProximityGraph) {
        let data = SynthConfig {
            dim: 16,
            intrinsic_dim: 6,
            clusters: 6,
            cluster_std: 0.8,
            noise_std: 0.03,
            transform: ValueTransform::Identity,
        }
        .generate(n, seed);
        let graph = VamanaConfig {
            r: 8,
            l: 24,
            ..Default::default()
        }
        .build(&data);
        (data, graph)
    }

    #[test]
    fn triplets_respect_scopes() {
        let (data, graph) = setup(400, 1);
        let cfg = TripletSamplerConfig {
            n_hops: 2,
            k_pos: 4,
            k_neg: 8,
            seed: 0,
        };
        let triplets = sample_triplets(&graph, &data, &cfg, 50);
        assert!(!triplets.is_empty());
        for t in &triplets {
            assert_ne!(t.anchor, t.pos);
            assert_ne!(t.pos, t.neg);
            // Scope check: pos must rank before neg in the anchor's sorted
            // n-hop neighborhood.
            let mut hood = graph.n_hop_neighborhood(t.anchor, cfg.n_hops);
            let av = data.get(t.anchor as usize);
            hood.sort_by(|&a, &b| {
                sq_l2(av, data.get(a as usize))
                    .total_cmp(&sq_l2(av, data.get(b as usize)))
                    .then(a.cmp(&b))
            });
            let pos_rank = hood.iter().position(|&x| x == t.pos).unwrap();
            let neg_rank = hood.iter().position(|&x| x == t.neg).unwrap();
            assert!(pos_rank < cfg.k_pos, "pos outside scope: rank {pos_rank}");
            assert!(neg_rank >= cfg.k_pos, "neg inside positive scope");
            assert!(neg_rank < cfg.k_pos + cfg.k_neg, "neg outside k_neg scope");
        }
    }

    #[test]
    fn positive_is_closer_than_negative_usually() {
        // By construction pos ranks above neg; distances must agree.
        let (data, graph) = setup(400, 2);
        let triplets = sample_triplets(&graph, &data, &TripletSamplerConfig::default(), 60);
        for t in &triplets {
            let av = data.get(t.anchor as usize);
            let dp = sq_l2(av, data.get(t.pos as usize));
            let dn = sq_l2(av, data.get(t.neg as usize));
            assert!(dp <= dn, "triplet ordering violated: {dp} > {dn}");
        }
    }

    #[test]
    fn triplet_count_is_bounded_by_request() {
        let (data, graph) = setup(200, 3);
        let triplets = sample_triplets(&graph, &data, &TripletSamplerConfig::default(), 10);
        assert!(triplets.len() <= 10);
    }

    #[test]
    fn routing_features_have_valid_labels() {
        let (data, graph) = setup(400, 4);
        let cfg = RoutingSamplerConfig {
            n_queries: 8,
            h: 8,
            ..Default::default()
        };
        let feats = sample_routing_features(
            &graph,
            &data,
            &|q| Box::new(ExactEstimator::new(&data, q)) as Box<dyn DistanceEstimator>,
            &cfg,
        );
        assert!(!feats.is_empty(), "no routing features extracted");
        for f in &feats {
            assert_eq!(f.candidates.len(), 8);
            assert!(f.best < 8);
            // The labelled best truly minimises the exact distance.
            let qv = data.get(f.query as usize);
            let best_d = sq_l2(qv, data.get(f.candidates[f.best] as usize));
            for &c in &f.candidates {
                assert!(best_d <= sq_l2(qv, data.get(c as usize)) + 1e-6);
            }
        }
    }

    #[test]
    fn routing_with_exact_estimator_ranks_best_first() {
        // When routing uses exact distances, the recorded sets are already
        // correctly ranked, so the best label is (almost always) index 0.
        let (data, graph) = setup(300, 5);
        let cfg = RoutingSamplerConfig {
            n_queries: 6,
            h: 6,
            ..Default::default()
        };
        let feats = sample_routing_features(
            &graph,
            &data,
            &|q| Box::new(ExactEstimator::new(&data, q)) as Box<dyn DistanceEstimator>,
            &cfg,
        );
        let zero_frac = feats.iter().filter(|f| f.best == 0).count() as f32 / feats.len() as f32;
        assert!(
            zero_frac > 0.9,
            "exact routing should rank best first ({zero_frac})"
        );
    }

    #[test]
    fn triplet_sampler_handles_star_graph() {
        // A hub-and-spoke graph: every vertex's 1-hop neighborhood is tiny,
        // so the sampler must either skip or produce valid in-scope pairs.
        let mut data = Dataset::new(2);
        for i in 0..6 {
            data.push(&[i as f32, 0.0]);
        }
        let adj: Vec<Vec<u32>> = (0..6)
            .map(|i| if i == 0 { (1..6).collect() } else { vec![0] })
            .collect();
        let graph = rpq_graph::ProximityGraph::from_adjacency(adj, 0);
        let cfg = TripletSamplerConfig {
            n_hops: 1,
            k_pos: 2,
            k_neg: 4,
            seed: 0,
        };
        let triplets = sample_triplets(&graph, &data, &cfg, 20);
        for t in &triplets {
            assert_ne!(t.pos, t.neg);
            assert_ne!(t.anchor, t.pos);
        }
    }

    #[test]
    fn routing_sampler_skips_underfull_beams() {
        // With h larger than the number of reachable vertices, no decision
        // ever fills the beam, so the sampler returns nothing (rather than
        // ragged batches).
        let (data, graph) = setup(40, 7);
        let cfg = RoutingSamplerConfig {
            n_queries: 4,
            h: 64,
            ..Default::default()
        };
        let feats = sample_routing_features(
            &graph,
            &data,
            &|q| Box::new(ExactEstimator::new(&data, q)) as Box<dyn DistanceEstimator>,
            &cfg,
        );
        for f in &feats {
            assert_eq!(f.candidates.len(), 64);
        }
    }

    #[test]
    #[should_panic(expected = "k_pos must be >= 1")]
    fn zero_k_pos_rejected() {
        let (data, graph) = setup(50, 8);
        let cfg = TripletSamplerConfig {
            n_hops: 1,
            k_pos: 0,
            k_neg: 4,
            seed: 0,
        };
        let _ = sample_triplets(&graph, &data, &cfg, 1);
    }

    #[test]
    fn decisions_per_query_capped() {
        let (data, graph) = setup(300, 6);
        let cfg = RoutingSamplerConfig {
            n_queries: 3,
            h: 4,
            max_decisions_per_query: 2,
            seed: 1,
        };
        let feats = sample_routing_features(
            &graph,
            &data,
            &|q| Box::new(ExactEstimator::new(&data, q)) as Box<dyn DistanceEstimator>,
            &cfg,
        );
        assert!(feats.len() <= 6);
    }
}
