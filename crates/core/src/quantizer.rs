//! The differentiable quantizer (paper §4).
//!
//! Two pieces make the discrete PQ pipeline differentiable:
//!
//! 1. **Adaptive vector decomposition**: instead of a fixed vertical split,
//!    vectors are rotated by `R = exp(A)` with `A = W − Wᵀ` built from a
//!    learnable matrix `W`. Orthogonality is guaranteed by construction
//!    (`exp(A)ᵀ = exp(−A) = exp(A)⁻¹`), and gradients flow through the
//!    matrix exponential via its Fréchet adjoint (`rpq-autodiff`).
//! 2. **Differentiable quantization**: codeword assignment probabilities
//!    `p(c_jk | R x_j) = softmax(−δ(R x_j, c_jk)/τ_a)` (Eq. 6, with the
//!    sign corrected — see DESIGN.md §4) are pushed through Gumbel-Softmax
//!    (Eq. 7), and the "quantized" training-time vector is the
//!    probability-weighted codeword mixture, which converges to hard
//!    assignment as the temperature anneals.
//!
//! At inference the quantizer is exported as a hard rotation + codebook
//! ([`DiffQuantizer::export_pq`]) served identically to OPQ.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rpq_autodiff::{Tape, Var};
use rpq_data::Dataset;
use rpq_linalg::{cayley, expm, Matrix};
use rpq_quant::{Codebook, OptimizedProductQuantizer, PqConfig, ProductQuantizer};

/// How the orthonormal rotation is parameterised from the skew matrix
/// `A = W − Wᵀ`. The paper uses the matrix exponential; the Cayley
/// transform is the classical cheaper alternative kept for the DESIGN.md
/// ablation (`bench_rotation`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RotationParam {
    /// `R = exp(A)` (paper §4), exact vjp via the Fréchet adjoint.
    #[default]
    Expm,
    /// `R = (I − A)⁻¹(I + A)`.
    Cayley,
}

/// Mean of a matrix's entries, floored away from zero — the stop-gradient
/// normaliser that makes the temperatures scale-free.
pub(crate) fn batch_mean(m: &Matrix) -> f32 {
    let n = (m.rows * m.cols).max(1) as f32;
    (m.data.iter().map(|&v| v as f64).sum::<f64>() as f32 / n).max(1e-12)
}

/// Structural parameters of the differentiable quantizer.
#[derive(Clone, Copy, Debug)]
pub struct DiffQuantizerConfig {
    /// Number of chunks M (must divide the dimension).
    pub m: usize,
    /// Codewords per sub-codebook K (≤ 256).
    pub k: usize,
    /// Assignment-probability temperature τ_a (Eq. 6), applied to
    /// batch-mean-normalised distances (scale-free).
    pub tau_assign: f32,
    /// Scale of the random initialisation of `W` (0 starts at `R = I`).
    pub w_init_scale: f32,
    /// Training vectors used for the k-means codebook initialisation.
    pub init_train_size: usize,
    /// Rotation parameterisation (paper: matrix exponential).
    pub rotation: RotationParam,
    pub seed: u64,
}

impl Default for DiffQuantizerConfig {
    fn default() -> Self {
        Self {
            m: 8,
            k: 256,
            tau_assign: 0.1,
            w_init_scale: 0.0,
            init_train_size: 20_000,
            rotation: RotationParam::default(),
            seed: 0,
        }
    }
}

/// Tape handles for one training step.
pub struct QuantizerVars {
    /// The learnable pre-skew matrix `W`.
    pub w: Var,
    /// One learnable `K × dsub` codebook per chunk.
    pub codebooks: Vec<Var>,
    /// `Rᵀ` (as a tape node), the right-multiplier that rotates row
    /// vectors: `x_rot = x_row · Rᵀ`.
    pub rot_t: Var,
}

/// The learnable state of RPQ's quantizer.
#[derive(Clone)]
pub struct DiffQuantizer {
    cfg: DiffQuantizerConfig,
    /// Learnable `D × D` matrix; the rotation is `exp(W − Wᵀ)`.
    pub w: Matrix,
    /// Learnable codebooks, one `K × dsub` matrix per chunk.
    pub codebooks: Vec<Matrix>,
    dim: usize,
    dsub: usize,
}

impl DiffQuantizer {
    /// Builds a quantizer from an existing codebook (warm start), with the
    /// learned rotation at identity (`W = 0`).
    pub fn from_codebook(cfg: DiffQuantizerConfig, codebook: &Codebook) -> Self {
        let d = codebook.dim();
        assert_eq!(cfg.m, codebook.m(), "chunk count mismatch");
        let dsub = codebook.dsub();
        let codebooks = (0..cfg.m)
            .map(|j| Matrix::from_vec(codebook.k(), dsub, codebook.sub_codebook(j).to_vec()))
            .collect();
        Self {
            cfg,
            w: Matrix::zeros(d, d),
            codebooks,
            dim: d,
            dsub,
        }
    }

    /// Initialises with `R ≈ I` (or a small random skew) and codebooks from
    /// a plain PQ fit — the same warm start the paper's end-to-end learning
    /// refines.
    pub fn init(cfg: DiffQuantizerConfig, data: &Dataset) -> Self {
        let d = data.dim();
        assert!(
            cfg.m > 0 && d.is_multiple_of(cfg.m),
            "M = {} must divide the dimension {d}",
            cfg.m
        );
        let dsub = d / cfg.m;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let w = if cfg.w_init_scale > 0.0 {
            Matrix::random_uniform(d, d, cfg.w_init_scale, &mut rng)
        } else {
            Matrix::zeros(d, d)
        };
        let pq = ProductQuantizer::train(
            &PqConfig {
                m: cfg.m,
                k: cfg.k,
                train_size: cfg.init_train_size,
                seed: cfg.seed,
                ..Default::default()
            },
            data,
        );
        let cb = pq.codebook();
        let k_eff = cb.k();
        let codebooks = (0..cfg.m)
            .map(|j| Matrix::from_vec(k_eff, dsub, cb.sub_codebook(j).to_vec()))
            .collect();
        Self {
            cfg,
            w,
            codebooks,
            dim: d,
            dsub,
        }
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Effective K (may be below `cfg.k` for tiny training sets).
    pub fn k(&self) -> usize {
        self.codebooks[0].rows
    }

    /// Chunk count M.
    pub fn m(&self) -> usize {
        self.cfg.m
    }

    /// Registers the learnable parameters on a tape and computes `Rᵀ` once.
    pub fn begin(&self, t: &mut Tape) -> QuantizerVars {
        let w = t.param(self.w.clone());
        let wt = t.transpose(w);
        let a = t.sub(w, wt);
        let r = match self.cfg.rotation {
            RotationParam::Expm => t.matrix_exp(a),
            RotationParam::Cayley => t.cayley_map(a),
        };
        let rot_t = t.transpose(r);
        let codebooks = self.codebooks.iter().map(|c| t.param(c.clone())).collect();
        QuantizerVars {
            w,
            codebooks,
            rot_t,
        }
    }

    /// Rotates a constant batch on the tape: `X · Rᵀ`.
    pub fn rotate(&self, t: &mut Tape, vars: &QuantizerVars, x: Var) -> Var {
        t.matmul(x, vars.rot_t)
    }

    /// Differentiable quantization of an already-rotated batch: per chunk,
    /// soft codeword assignment via Gumbel-Softmax and the probability-
    /// weighted codeword mixture (paper Eq. 6–7). `tau_gumbel` anneals over
    /// training.
    pub fn quantize_rotated<R: Rng + ?Sized>(
        &self,
        t: &mut Tape,
        vars: &QuantizerVars,
        xr: Var,
        tau_gumbel: f32,
        rng: &mut R,
    ) -> Var {
        let mut parts = Vec::with_capacity(self.cfg.m);
        for (j, &cj) in vars.codebooks.iter().enumerate() {
            let xj = t.slice_cols(xr, j * self.dsub, (j + 1) * self.dsub);
            let d2 = t.pairwise_sq_dist(xj, cj);
            // Eq. 6 (sign-corrected): p ∝ exp(−δ/τ_a). The raw squared
            // distances are dataset-scale-dependent (SIFT bytes put them at
            // ~1e4), so τ_a is applied to distances normalised by the batch
            // mean (a stop-gradient normaliser): without this the softmax
            // saturates to a constant one-hot and training gets no signal.
            let mean = batch_mean(t.value(d2));
            let logits = t.scale(d2, -1.0 / (self.cfg.tau_assign * mean));
            let q = t.gumbel_softmax(logits, tau_gumbel, rng);
            let xqj = t.matmul(q, cj);
            parts.push(xqj);
        }
        t.concat_cols(&parts)
    }

    /// Convenience: rotate + quantize a raw constant batch.
    pub fn quantize<R: Rng + ?Sized>(
        &self,
        t: &mut Tape,
        vars: &QuantizerVars,
        x: Var,
        tau_gumbel: f32,
        rng: &mut R,
    ) -> Var {
        let xr = self.rotate(t, vars, x);
        self.quantize_rotated(t, vars, xr, tau_gumbel, rng)
    }

    /// The current hard rotation of `A = W − Wᵀ` under the configured
    /// parameterisation.
    pub fn rotation(&self) -> Matrix {
        let a = self.w.sub(&self.w.transpose());
        match self.cfg.rotation {
            RotationParam::Expm => expm(&a),
            RotationParam::Cayley => cayley(&a),
        }
    }

    /// Freezes the learned codebooks into a serving [`Codebook`].
    pub fn to_codebook(&self) -> Codebook {
        let k = self.k();
        let mut flat = Vec::with_capacity(self.cfg.m * k * self.dsub);
        for c in &self.codebooks {
            flat.extend_from_slice(&c.data);
        }
        Codebook::new(self.cfg.m, k, self.dsub, flat)
    }

    /// Exports the learned quantizer for serving: a rotation + hard-argmin
    /// codebook, packaged in the same machinery OPQ uses (right-multiplying
    /// rows by `Rᵀ` realises the paper's `R x`).
    pub fn export_pq(&self, train_seconds: f32) -> OptimizedProductQuantizer {
        self.export_pq_scaled(train_seconds, 1.0)
    }

    /// Like [`DiffQuantizer::export_pq`] but multiplies every codeword by
    /// `scale` — the trainer optimises in a unit-scale normalised space (so
    /// Adam's step size is meaningful for codebooks regardless of the
    /// dataset's value range) and rescales at export.
    pub fn export_pq_scaled(&self, train_seconds: f32, scale: f32) -> OptimizedProductQuantizer {
        let mut cb = self.to_codebook();
        if scale != 1.0 {
            for j in 0..cb.m() {
                for v in cb.sub_codebook_mut(j) {
                    *v *= scale;
                }
            }
        }
        let pq = ProductQuantizer::from_codebook(cb, train_seconds);
        OptimizedProductQuantizer::from_parts(self.rotation().transpose(), pq, train_seconds)
    }

    /// Bytes of learnable state (paper Table 5's "model size" for RPQ:
    /// the skew parameter matrix plus codebooks).
    pub fn model_bytes(&self) -> usize {
        (self.w.data.len() + self.codebooks.iter().map(|c| c.data.len()).sum::<usize>()) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_data::synth::{SynthConfig, ValueTransform};
    use rpq_linalg::is_orthonormal;
    use rpq_quant::VectorCompressor;

    fn toy(n: usize, dim: usize, seed: u64) -> Dataset {
        SynthConfig {
            dim,
            intrinsic_dim: dim / 2,
            clusters: 6,
            cluster_std: 0.8,
            noise_std: 0.05,
            transform: ValueTransform::Identity,
        }
        .generate(n, seed)
    }

    fn small_quantizer(data: &Dataset) -> DiffQuantizer {
        DiffQuantizer::init(
            DiffQuantizerConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            data,
        )
    }

    #[test]
    fn rotation_starts_at_identity_and_stays_orthonormal() {
        let data = toy(200, 16, 1);
        let mut q = small_quantizer(&data);
        let r0 = q.rotation();
        let i = Matrix::identity(16);
        for (a, b) in r0.data.iter().zip(&i.data) {
            assert!((a - b).abs() < 1e-5);
        }
        // Perturb W arbitrarily: rotation must remain orthonormal.
        let mut rng = SmallRng::seed_from_u64(7);
        q.w = Matrix::random_uniform(16, 16, 1.0, &mut rng);
        assert!(is_orthonormal(&q.rotation(), 1e-3));
    }

    #[test]
    fn soft_quantization_approaches_hard_at_low_temperature() {
        let data = toy(300, 16, 2);
        let q = DiffQuantizer::init(
            // Sharp assignment distribution so sampled Gumbel argmax ==
            // argmin distance with high probability.
            DiffQuantizerConfig {
                m: 4,
                k: 16,
                tau_assign: 0.02,
                ..Default::default()
            },
            &data,
        );
        let mut rng = SmallRng::seed_from_u64(3);
        let batch = data.to_matrix(0, 8);

        let mut t = Tape::new();
        let vars = q.begin(&mut t);
        let x = t.constant(batch.clone());
        let xq = q.quantize(&mut t, &vars, x, 0.05, &mut rng);
        let soft = t.value(xq).clone();

        // Hard reference: encode + decode via the exported quantizer.
        let exported = q.export_pq(0.0);
        let codes = exported.encode_dataset(&Dataset::from_matrix(&batch));
        let mut hard = vec![0.0f32; 16];
        let mut matches = 0;
        for i in 0..8 {
            exported.decode_into(codes.code(i), &mut hard);
            let d = rpq_linalg::distance::sq_l2(soft.row(i), &hard);
            let scale = rpq_linalg::distance::sq_norm(&hard).max(1.0);
            if d < 0.05 * scale {
                matches += 1;
            }
        }
        assert!(matches >= 6, "only {matches}/8 rows match hard assignment");
    }

    #[test]
    fn quantize_is_differentiable_wrt_all_params() {
        let data = toy(200, 8, 3);
        let q = DiffQuantizer::init(
            DiffQuantizerConfig {
                m: 2,
                k: 8,
                w_init_scale: 0.1,
                ..Default::default()
            },
            &data,
        );
        let mut rng = SmallRng::seed_from_u64(4);
        let mut t = Tape::new();
        let vars = q.begin(&mut t);
        let x = t.constant(data.to_matrix(0, 16));
        let xq = q.quantize(&mut t, &vars, x, 1.0, &mut rng);
        let sq = t.square(xq);
        let loss = t.mean_all(sq);
        let grads = t.backward(loss);
        assert!(grads.get(vars.w).is_some(), "no gradient for W");
        let gw = grads.get(vars.w).unwrap();
        assert!(gw.frob_norm() > 0.0, "zero gradient for W");
        for (j, &cv) in vars.codebooks.iter().enumerate() {
            let g = grads
                .get(cv)
                .unwrap_or_else(|| panic!("no grad for codebook {j}"));
            assert!(g.frob_norm() > 0.0, "zero gradient for codebook {j}");
        }
    }

    #[test]
    fn export_distances_match_decoded_distances() {
        let data = toy(300, 16, 5);
        let q = small_quantizer(&data);
        let exported = q.export_pq(0.0);
        let codes = exported.encode_dataset(&data);
        let query = data.get(9);
        let lut = exported.lookup_table(query);
        let est = exported.estimator(&codes, query);
        for i in (0..300).step_by(41) {
            assert!((lut.distance(codes.code(i)) - est.distance(i as u32)).abs() < 1e-4);
        }
    }

    #[test]
    fn model_bytes_counts_w_and_codebooks() {
        let data = toy(100, 16, 6);
        let q = small_quantizer(&data);
        assert_eq!(q.model_bytes(), (16 * 16 + 4 * 16 * 4) * 4);
    }

    #[test]
    #[should_panic(expected = "must divide the dimension")]
    fn bad_m_rejected() {
        let data = toy(50, 10, 7);
        let _ = DiffQuantizer::init(
            DiffQuantizerConfig {
                m: 3,
                ..Default::default()
            },
            &data,
        );
    }
}
