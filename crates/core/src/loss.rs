//! The feature-aware losses (paper §6).
//!
//! * [`neighborhood_loss`] — triplet margin loss in quantized space
//!   (Eq. 8): pull `⟨x'_v, x'_{v+}⟩` together, push `⟨x'_v, x'_{v−}⟩`
//!   apart.
//! * [`routing_loss`] — listwise next-hop log-likelihood (Eq. 9–10): at
//!   every recorded decision, maximise the probability (softmax over the
//!   candidate set, ADC distances, temperature τ) of selecting the truly
//!   closest candidate.
//! * [`LossWeighting`] — Eq. 11's combination. A raw learnable positive
//!   multiplier on a non-negative loss collapses to zero, so "learnable α"
//!   is realised as homoscedastic uncertainty weighting (Kendall & Gal);
//!   a fixed coefficient is also available (DESIGN.md §4).

use rand::Rng;
use rpq_autodiff::{Tape, Var};
use rpq_data::Dataset;
use rpq_linalg::Matrix;

use crate::features::{RoutingFeature, Triplet};
use crate::quantizer::{DiffQuantizer, QuantizerVars};

/// How the two feature-aware losses combine into Eq. 11.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LossWeighting {
    /// `L = L_routing + α · L_neighborhood` with fixed α.
    Fixed(f32),
    /// Learnable homoscedastic weighting:
    /// `L = e^{−s₁} L_routing + s₁ + e^{−s₂} L_neighborhood + s₂`.
    Uncertainty,
}

/// Builds the neighborhood triplet loss (Eq. 8) for a batch of triplets.
/// Quantizes `[anchors; positives; negatives]` in one pass and returns the
/// mean hinge `max(0, σ + δ(x'_v, x'_{v+}) − δ(x'_v, x'_{v−}))`.
#[allow(clippy::too_many_arguments)]
pub fn neighborhood_loss<R: Rng + ?Sized>(
    t: &mut Tape,
    dq: &DiffQuantizer,
    vars: &QuantizerVars,
    data: &Dataset,
    triplets: &[Triplet],
    sigma: f32,
    tau_gumbel: f32,
    rng: &mut R,
) -> Var {
    assert!(
        !triplets.is_empty(),
        "neighborhood loss needs at least one triplet"
    );
    let b = triplets.len();
    let d = data.dim();
    let mut rows = Vec::with_capacity(3 * b * d);
    for tr in triplets {
        rows.extend_from_slice(data.get(tr.anchor as usize));
    }
    for tr in triplets {
        rows.extend_from_slice(data.get(tr.pos as usize));
    }
    for tr in triplets {
        rows.extend_from_slice(data.get(tr.neg as usize));
    }
    let x = t.constant(Matrix::from_vec(3 * b, d, rows));
    let xq = dq.quantize(t, vars, x, tau_gumbel, rng);
    let a = t.slice_rows(xq, 0, b);
    let p = t.slice_rows(xq, b, 2 * b);
    let n = t.slice_rows(xq, 2 * b, 3 * b);
    let ap = t.sub(a, p);
    let d_ap = t.row_sq_norm(ap);
    let an = t.sub(a, n);
    let d_an = t.row_sq_norm(an);
    // Scale-free margin: distances are normalised by their batch mean
    // (stop-gradient), so σ is a relative margin and the hinge gradient
    // magnitude is dataset-independent.
    let norm = 0.5
        * (crate::quantizer::batch_mean(t.value(d_ap))
            + crate::quantizer::batch_mean(t.value(d_an)));
    let gap = t.sub(d_ap, d_an);
    let gap = t.scale(gap, 1.0 / norm);
    let shifted = t.add_scalar(gap, sigma);
    let hinge = t.relu(shifted);
    t.mean_all(hinge)
}

/// Builds the routing loss (Eq. 9–10) for a batch of recorded decisions.
///
/// All candidates are quantized (differentiably); queries are only rotated
/// (ADC: the query stays unquantized). Per decision, the negative
/// log-likelihood of the correct candidate under
/// `softmax(−δ(x'_c, q)/τ)` is averaged.
#[allow(clippy::too_many_arguments)]
pub fn routing_loss<R: Rng + ?Sized>(
    t: &mut Tape,
    dq: &DiffQuantizer,
    vars: &QuantizerVars,
    data: &Dataset,
    decisions: &[RoutingFeature],
    tau_route: f32,
    tau_gumbel: f32,
    rng: &mut R,
) -> Var {
    assert!(
        !decisions.is_empty(),
        "routing loss needs at least one decision"
    );
    let b = decisions.len();
    let h = decisions[0].candidates.len();
    assert!(h >= 2, "decisions must have at least two candidates");
    let d = data.dim();

    let mut cand_rows = Vec::with_capacity(b * h * d);
    let mut query_rows = Vec::with_capacity(b * d);
    let mut best = Vec::with_capacity(b);
    let mut rep_idx = Vec::with_capacity(b * h);
    for (i, dec) in decisions.iter().enumerate() {
        assert_eq!(dec.candidates.len(), h, "ragged decision batch");
        assert!(dec.best < h, "best index out of range");
        for &c in &dec.candidates {
            cand_rows.extend_from_slice(data.get(c as usize));
            rep_idx.push(i);
        }
        query_rows.extend_from_slice(data.get(dec.query as usize));
        best.push(dec.best);
    }

    let cands = t.constant(Matrix::from_vec(b * h, d, cand_rows));
    let xq = dq.quantize(t, vars, cands, tau_gumbel, rng);
    let queries = t.constant(Matrix::from_vec(b, d, query_rows));
    let qr = dq.rotate(t, vars, queries);
    let qrep = t.gather_rows(qr, &rep_idx);
    let diff = t.sub(xq, qrep);
    let dists = t.row_sq_norm(diff);
    let per_decision = t.reshape(dists, b, h);
    // Scale-free temperature (see neighborhood_loss): candidate distances
    // are normalised by their batch mean before the softmax.
    let norm = crate::quantizer::batch_mean(t.value(per_decision));
    let logits = t.scale(per_decision, -1.0 / (tau_route * norm));
    let lse = t.row_logsumexp(logits);
    let correct = t.select_per_row(logits, &best);
    let nll = t.sub(lse, correct);
    t.mean_all(nll)
}

/// Reconstruction anchor: mean squared distortion of the differentiable
/// quantization, normalised by the batch's mean squared norm (scale-free).
///
/// The ranking losses (Eq. 8–10) are invariant to drifting the whole
/// quantized space away from the data manifold; this term realises the
/// paper's problem objective (Eq. 2: quantized vectors close to queries in
/// *absolute* distance) and keeps codebooks faithful while the feature
/// losses reshape their fine structure.
pub fn reconstruction_loss<R: Rng + ?Sized>(
    t: &mut Tape,
    dq: &DiffQuantizer,
    vars: &QuantizerVars,
    data: &Dataset,
    ids: &[u32],
    tau_gumbel: f32,
    rng: &mut R,
) -> Var {
    assert!(
        !ids.is_empty(),
        "reconstruction loss needs at least one vector"
    );
    let d = data.dim();
    let mut rows = Vec::with_capacity(ids.len() * d);
    for &i in ids {
        rows.extend_from_slice(data.get(i as usize));
    }
    let x = t.constant(Matrix::from_vec(ids.len(), d, rows));
    let xr = dq.rotate(t, vars, x);
    let xq = dq.quantize_rotated(t, vars, xr, tau_gumbel, rng);
    let diff = t.sub(xq, xr);
    let d2 = t.row_sq_norm(diff);
    let norms = t.row_sq_norm(xr);
    let scale = crate::quantizer::batch_mean(t.value(norms));
    let normed = t.scale(d2, 1.0 / scale);
    t.mean_all(normed)
}

/// Combines the two losses per [`LossWeighting`]. For `Uncertainty`, `s1`
/// and `s2` must be registered 1×1 parameters.
pub fn combine(
    t: &mut Tape,
    weighting: LossWeighting,
    l_routing: Option<Var>,
    l_neighborhood: Option<Var>,
    s1: Option<Var>,
    s2: Option<Var>,
) -> Var {
    match (l_routing, l_neighborhood) {
        (Some(lr), Some(ln)) => match weighting {
            LossWeighting::Fixed(alpha) => {
                let scaled = t.scale(ln, alpha);
                t.add(lr, scaled)
            }
            LossWeighting::Uncertainty => {
                let s1 = s1.expect("uncertainty weighting requires s1");
                let s2 = s2.expect("uncertainty weighting requires s2");
                let w1 = {
                    let n = t.neg(s1);
                    t.exp(n)
                };
                let w2 = {
                    let n = t.neg(s2);
                    t.exp(n)
                };
                let t1 = t.mul(w1, lr);
                let t2 = t.mul(w2, ln);
                let a = t.add(t1, s1);
                let bsum = t.add(t2, s2);
                t.add(a, bsum)
            }
        },
        (Some(lr), None) => lr,
        (None, Some(ln)) => ln,
        (None, None) => panic!("combine called with no losses"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantizer::DiffQuantizerConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rpq_data::synth::{SynthConfig, ValueTransform};

    fn toy(n: usize, seed: u64) -> Dataset {
        SynthConfig {
            dim: 8,
            intrinsic_dim: 4,
            clusters: 4,
            cluster_std: 0.8,
            noise_std: 0.05,
            transform: ValueTransform::Identity,
        }
        .generate(n, seed)
    }

    fn small_dq(data: &Dataset) -> DiffQuantizer {
        DiffQuantizer::init(
            DiffQuantizerConfig {
                m: 2,
                k: 8,
                w_init_scale: 0.05,
                ..Default::default()
            },
            data,
        )
    }

    #[test]
    fn neighborhood_loss_is_finite_and_differentiable() {
        let data = toy(100, 1);
        let dq = small_dq(&data);
        let mut rng = SmallRng::seed_from_u64(2);
        let triplets = vec![
            Triplet {
                anchor: 0,
                pos: 1,
                neg: 50,
            },
            Triplet {
                anchor: 3,
                pos: 4,
                neg: 70,
            },
        ];
        let mut t = Tape::new();
        let vars = dq.begin(&mut t);
        let loss = neighborhood_loss(&mut t, &dq, &vars, &data, &triplets, 0.5, 0.5, &mut rng);
        let lv = t.value(loss)[(0, 0)];
        assert!(lv.is_finite() && lv >= 0.0, "loss {lv}");
        let grads = t.backward(loss);
        assert!(grads.get(vars.w).is_some());
    }

    #[test]
    fn routing_loss_is_finite_and_differentiable() {
        let data = toy(100, 3);
        let dq = small_dq(&data);
        let mut rng = SmallRng::seed_from_u64(4);
        let decisions = vec![
            RoutingFeature {
                query: 0,
                candidates: vec![1, 2, 3, 4],
                best: 0,
            },
            RoutingFeature {
                query: 5,
                candidates: vec![10, 11, 12, 13],
                best: 2,
            },
        ];
        let mut t = Tape::new();
        let vars = dq.begin(&mut t);
        let loss = routing_loss(&mut t, &dq, &vars, &data, &decisions, 1.0, 0.5, &mut rng);
        let lv = t.value(loss)[(0, 0)];
        // NLL over 4 candidates is at most ln(4) + slack, at least ~0.
        assert!(lv.is_finite() && lv >= 0.0, "loss {lv}");
        let grads = t.backward(loss);
        assert!(grads.get(vars.w).is_some());
        for &c in &vars.codebooks {
            assert!(grads.get(c).is_some());
        }
    }

    #[test]
    fn routing_loss_lower_when_best_is_truly_closest() {
        // A decision whose label matches the quantized ranking should score
        // a lower NLL than one whose label is the farthest candidate.
        let data = toy(100, 5);
        let dq = small_dq(&data);
        let mut rng = SmallRng::seed_from_u64(6);
        // Query 0; candidate 0's own vector is closest to it (itself!).
        let aligned = vec![RoutingFeature {
            query: 0,
            candidates: vec![0, 40, 60, 80],
            best: 0,
        }];
        let misaligned = vec![RoutingFeature {
            query: 0,
            candidates: vec![0, 40, 60, 80],
            best: 3,
        }];
        let eval = |feats: &[RoutingFeature], rng: &mut SmallRng| {
            let mut t = Tape::new();
            let vars = dq.begin(&mut t);
            let loss = routing_loss(&mut t, &dq, &vars, &data, feats, 1.0, 0.1, rng);
            t.value(loss)[(0, 0)]
        };
        let la = eval(&aligned, &mut rng);
        let lm = eval(&misaligned, &mut rng);
        assert!(la < lm, "aligned {la} should beat misaligned {lm}");
    }

    #[test]
    fn combine_fixed_adds_scaled() {
        let mut t = Tape::new();
        let a = t.constant(Matrix::from_vec(1, 1, vec![2.0]));
        let b = t.constant(Matrix::from_vec(1, 1, vec![3.0]));
        let c = combine(
            &mut t,
            LossWeighting::Fixed(0.5),
            Some(a),
            Some(b),
            None,
            None,
        );
        assert!((t.value(c)[(0, 0)] - 3.5).abs() < 1e-6);
    }

    #[test]
    fn combine_uncertainty_is_differentiable_in_s() {
        let mut t = Tape::new();
        let a = t.constant(Matrix::from_vec(1, 1, vec![2.0]));
        let b = t.constant(Matrix::from_vec(1, 1, vec![3.0]));
        let s1 = t.param(Matrix::zeros(1, 1));
        let s2 = t.param(Matrix::zeros(1, 1));
        let c = combine(
            &mut t,
            LossWeighting::Uncertainty,
            Some(a),
            Some(b),
            Some(s1),
            Some(s2),
        );
        // e^0·2 + 0 + e^0·3 + 0 = 5
        assert!((t.value(c)[(0, 0)] - 5.0).abs() < 1e-5);
        let grads = t.backward(c);
        // d/ds1 = −e^{−s1}·L + 1 = −2 + 1 = −1
        assert!((grads.get(s1).unwrap()[(0, 0)] + 1.0).abs() < 1e-5);
    }

    #[test]
    fn combine_single_loss_passthrough() {
        let mut t = Tape::new();
        let a = t.constant(Matrix::from_vec(1, 1, vec![7.0]));
        let c = combine(&mut t, LossWeighting::Fixed(1.0), Some(a), None, None, None);
        assert_eq!(t.value(c)[(0, 0)], 7.0);
    }

    #[test]
    #[should_panic(expected = "no losses")]
    fn combine_nothing_panics() {
        let mut t = Tape::new();
        let _ = combine(&mut t, LossWeighting::Fixed(1.0), None, None, None, None);
    }
}
