//! # rpq-core
//!
//! The paper's primary contribution: **Routing-guided learned Product
//! Quantization (RPQ)** for graph-based ANNS, end to end.
//!
//! The pipeline (paper Fig. 2) is implemented in three modules mirroring the
//! paper's three components:
//!
//! * [`quantizer`] — the **differentiable quantizer** (§4): adaptive vector
//!   decomposition by a learned orthonormal rotation `R = exp(W − Wᵀ)` and
//!   differentiable codeword assignment by Gumbel-Softmax, expressed on the
//!   `rpq-autodiff` tape so the whole quantization path back-propagates;
//! * [`features`] — the **sampling-based feature extractor** (§5): Alg. 1's
//!   n-propagation triplet sampling (neighborhood features) and Alg. 2's
//!   beam-search decision recording (routing features);
//! * [`loss`] + [`trainer`] — the **multi-feature joint training module**
//!   (§6): the triplet margin loss (Eq. 8), the next-hop log-likelihood loss
//!   (Eq. 9–10), their joint combination (Eq. 11), minimised with mini-batch
//!   Adam under a one-cycle LR schedule.
//!
//! Training produces an [`RpqCompressor`] — a rotation + codebook servable
//! through the exact machinery the baselines use (`rpq-quant`'s
//! [`rpq_quant::VectorCompressor`]), so the ANNS engines in `rpq-anns`
//! consume RPQ and the baselines interchangeably.
//!
//! Ablation variants of the paper's Tables 6–7 are selected by
//! [`trainer::TrainingMode`]: `Full` (RPQ), `NeighborOnly` (RPQ w/ N),
//! `RoutingOnly` (RPQ w/ R), and `PathImitation` (RPQ w/ L2R — imitates
//! optimal routing paths of seen queries instead of learning per-decision
//! ranking, the straw-man of paper Challenge II).

pub mod features;
pub mod loss;
pub mod quantizer;
pub mod trainer;

pub use features::{
    sample_routing_features, sample_triplets, RoutingFeature, RoutingSamplerConfig, Triplet,
    TripletSamplerConfig,
};
pub use loss::LossWeighting;
pub use quantizer::{DiffQuantizer, DiffQuantizerConfig, RotationParam};
pub use trainer::{train_rpq, RpqCompressor, RpqTrainerConfig, TrainStats, TrainingMode};
