//! The multi-feature joint training module (paper §6) and the servable
//! compressor it produces.
//!
//! Per epoch the trainer (a) re-extracts routing features with the *current*
//! quantizer — the features must track the quantizer they supervise, as the
//! routing behaviour changes while it learns — (b) re-samples triplets, and
//! (c) runs mini-batch Adam steps on the joint loss under a one-cycle LR
//! schedule (paper hyper-parameters: LR 1e-3, decay 0.2), annealing the
//! Gumbel-Softmax temperature toward hard assignment.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rpq_autodiff::{Adam, AdamConfig, LrSchedule, OneCycleLr, Tape};
use rpq_data::Dataset;
use rpq_graph::{DistanceEstimator, ExactEstimator, ProximityGraph};
use rpq_linalg::Matrix;
use rpq_quant::{
    CompactCodes, LookupTable, OpqConfig, OptimizedProductQuantizer, PqConfig, VectorCompressor,
};

use crate::features::{
    sample_routing_features, sample_triplets, RoutingSamplerConfig, TripletSamplerConfig,
};
use crate::loss::{combine, neighborhood_loss, reconstruction_loss, routing_loss, LossWeighting};
use crate::quantizer::{DiffQuantizer, DiffQuantizerConfig};

/// Which features supervise training — the paper's ablation axes
/// (Tables 6–7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrainingMode {
    /// Both losses (the full RPQ).
    Full,
    /// Neighborhood features only ("RPQ w/ N").
    NeighborOnly,
    /// Routing features only ("RPQ w/ R").
    RoutingOnly,
    /// Learning-to-route-style path imitation ("RPQ w/ L2R"): routing
    /// features are recorded from *exact-distance* optimal walks of seen
    /// queries instead of the learned quantizer's own rollouts — the
    /// straw-man of paper Challenge II.
    PathImitation,
}

impl TrainingMode {
    /// The label used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            TrainingMode::Full => "RPQ",
            TrainingMode::NeighborOnly => "RPQ w/ N",
            TrainingMode::RoutingOnly => "RPQ w/ R",
            TrainingMode::PathImitation => "RPQ w/ L2R",
        }
    }

    fn uses_neighborhood(&self) -> bool {
        matches!(self, TrainingMode::Full | TrainingMode::NeighborOnly)
    }

    fn uses_routing(&self) -> bool {
        !matches!(self, TrainingMode::NeighborOnly)
    }
}

/// Trainer configuration. Defaults follow the paper where stated (LR 1e-3,
/// decay 0.2, K = 256) and are laptop-scaled elsewhere.
#[derive(Clone, Copy, Debug)]
pub struct RpqTrainerConfig {
    pub quantizer: DiffQuantizerConfig,
    pub mode: TrainingMode,
    pub weighting: LossWeighting,
    pub epochs: usize,
    pub steps_per_epoch: usize,
    pub triplet_batch: usize,
    pub decision_batch: usize,
    pub triplet_sampler: TripletSamplerConfig,
    pub routing_sampler: RoutingSamplerConfig,
    /// Triplet margin σ (Eq. 8), relative to the batch-mean distance.
    pub sigma: f32,
    /// Routing softmax temperature τ (Eq. 9), applied to batch-mean-
    /// normalised distances.
    pub tau_route: f32,
    /// Gumbel temperature annealed from start to end across training.
    pub tau_gumbel_start: f32,
    pub tau_gumbel_end: f32,
    /// Peak learning rate (paper: 1e-3).
    pub lr: f32,
    /// LR multiplier for the rotation parameter `W` (a global parameter:
    /// moved more conservatively than the codebooks).
    pub w_lr_scale: f32,
    /// Weight of the reconstruction anchor (Eq. 2 fidelity term).
    pub lambda_recon: f32,
    /// Warm-start the decomposition from OPQ's Procrustes rotation and
    /// codebooks, then learn `exp(A)` composed on top. Gradient steps alone
    /// cannot reach the Procrustes optimum within the training budget, so
    /// this is what makes RPQ a strict refinement of the strongest
    /// rotation baseline.
    pub opq_init: bool,
    pub seed: u64,
}

impl Default for RpqTrainerConfig {
    fn default() -> Self {
        Self {
            quantizer: DiffQuantizerConfig::default(),
            mode: TrainingMode::Full,
            weighting: LossWeighting::Uncertainty,
            epochs: 4,
            steps_per_epoch: 25,
            triplet_batch: 48,
            decision_batch: 12,
            triplet_sampler: TripletSamplerConfig::default(),
            routing_sampler: RoutingSamplerConfig::default(),
            sigma: 0.2,
            tau_route: 0.1,
            tau_gumbel_start: 0.3,
            tau_gumbel_end: 0.05,
            lr: 1e-3,
            w_lr_scale: 0.1,
            lambda_recon: 3.0,
            opq_init: true,
            seed: 0,
        }
    }
}

/// Training telemetry (feeds the paper's Table 4 and the loss curves).
#[derive(Clone, Debug)]
pub struct TrainStats {
    pub seconds: f32,
    pub epoch_losses: Vec<f32>,
    pub triplets_sampled: usize,
    pub decisions_sampled: usize,
}

/// A trained RPQ served through the same rotation + codebook machinery as
/// OPQ, labelled by its training mode.
pub struct RpqCompressor {
    inner: OptimizedProductQuantizer,
    label: String,
    model_bytes: usize,
}

impl RpqCompressor {
    /// The learned rotation/codebook serving machinery.
    pub fn inner(&self) -> &OptimizedProductQuantizer {
        &self.inner
    }

    /// Builds the ADC lookup table for a raw query.
    pub fn lookup_table(&self, query: &[f32]) -> LookupTable {
        self.inner.lookup_table(query)
    }
}

impl VectorCompressor for RpqCompressor {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn code_dim(&self) -> usize {
        self.inner.code_dim()
    }

    fn model_bytes(&self) -> usize {
        self.model_bytes
    }

    fn train_seconds(&self) -> f32 {
        self.inner.train_seconds()
    }

    fn encode_dataset(&self, data: &Dataset) -> CompactCodes {
        self.inner.encode_dataset(data)
    }

    fn decode_into(&self, code: &[u8], out: &mut [f32]) {
        self.inner.decode_into(code, out);
    }

    fn estimator<'a>(
        &'a self,
        codes: &'a CompactCodes,
        query: &'a [f32],
    ) -> Box<dyn DistanceEstimator + 'a> {
        self.inner.estimator(codes, query)
    }

    fn batch_estimator<'a>(
        &'a self,
        codes: &'a rpq_quant::SoaCodes,
        query: &'a [f32],
    ) -> Option<Box<dyn DistanceEstimator + 'a>> {
        self.inner.batch_estimator(codes, query)
    }
}

/// Trains RPQ end to end on `data` over the proximity graph `graph`.
pub fn train_rpq(
    cfg: &RpqTrainerConfig,
    data: &Dataset,
    graph: &ProximityGraph,
) -> (RpqCompressor, TrainStats) {
    assert_eq!(graph.len(), data.len(), "graph/dataset size mismatch");
    let start = Instant::now();
    // Optimise in a unit-scale space: Adam's per-parameter step is an
    // absolute quantity, so codebooks must live at O(1) scale to track the
    // rotation within a realistic step budget. Distances only get a global
    // factor, so rankings (and therefore features/labels) are unaffected,
    // and the export rescales the codebooks back.
    let value_scale = data_rms(data);
    let normalised = scale_dataset(data, 1.0 / value_scale);
    // Optional OPQ warm start: pre-rotate the data by the Procrustes
    // rotation R0 and learn exp(A) on top; the export composes
    // rot = R0 · exp(A)ᵀ so serving sees one rotation.
    let (base_rotation, data, mut dq) = if cfg.opq_init {
        let opq = OptimizedProductQuantizer::train(
            &OpqConfig {
                pq: PqConfig {
                    m: cfg.quantizer.m,
                    k: cfg.quantizer.k,
                    train_size: cfg.quantizer.init_train_size,
                    seed: cfg.quantizer.seed,
                    ..Default::default()
                },
                iters: 6,
            },
            &normalised,
        );
        let rotated = opq.rotate_dataset(&normalised);
        let dq = DiffQuantizer::from_codebook(cfg.quantizer, opq.pq().codebook());
        (Some(opq.rotation().clone()), rotated, dq)
    } else {
        let dq = DiffQuantizer::init(cfg.quantizer, &normalised);
        (None, normalised, dq)
    };
    let data = &data;
    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(0x5EED));

    // Optimizer over [W, codebooks..., (s1, s2)].
    let mut sizes: Vec<usize> = vec![dq.w.data.len()];
    sizes.extend(dq.codebooks.iter().map(|c| c.data.len()));
    let uncertainty = cfg.weighting == LossWeighting::Uncertainty;
    if uncertainty {
        sizes.push(1);
        sizes.push(1);
    }
    let mut lr_scales = vec![1.0f32; sizes.len()];
    lr_scales[0] = cfg.w_lr_scale;
    let mut adam = Adam::with_lr_scales(
        AdamConfig {
            lr: cfg.lr,
            ..Default::default()
        },
        &sizes,
        &lr_scales,
    );
    let total_steps = (cfg.epochs * cfg.steps_per_epoch).max(1);
    let sched = OneCycleLr {
        max_lr: cfg.lr,
        ..OneCycleLr::paper_defaults(total_steps)
    };
    let mut s1 = Matrix::zeros(1, 1);
    let mut s2 = Matrix::zeros(1, 1);

    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut triplets_sampled = 0usize;
    let mut decisions_sampled = 0usize;
    let mut step_idx = 0usize;

    for epoch in 0..cfg.epochs {
        // (a) Routing features from the *current* quantizer (or exact walks
        // for the L2R ablation).
        let decisions = if cfg.mode.uses_routing() {
            let mut rcfg = cfg.routing_sampler;
            rcfg.seed = cfg.seed.wrapping_add(epoch as u64 * 131);
            let feats = if cfg.mode == TrainingMode::PathImitation {
                sample_routing_features(
                    graph,
                    data,
                    &|q| Box::new(ExactEstimator::new(data, q)) as Box<dyn DistanceEstimator>,
                    &rcfg,
                )
            } else {
                let exported = dq.export_pq(0.0);
                let codes = exported.encode_dataset(data);
                let feats =
                    sample_routing_features(graph, data, &|q| exported.estimator(&codes, q), &rcfg);
                feats
            };
            decisions_sampled += feats.len();
            feats
        } else {
            Vec::new()
        };

        // (b) Fresh triplets.
        let triplets = if cfg.mode.uses_neighborhood() {
            let mut tcfg = cfg.triplet_sampler;
            tcfg.seed = cfg.seed.wrapping_add(epoch as u64 * 977 + 7);
            let want = cfg.steps_per_epoch * cfg.triplet_batch;
            let tr = sample_triplets(graph, data, &tcfg, want);
            triplets_sampled += tr.len();
            tr
        } else {
            Vec::new()
        };

        // (c) Mini-batch steps.
        let tau_g = {
            let frac = epoch as f32 / cfg.epochs.max(1) as f32;
            cfg.tau_gumbel_start + frac * (cfg.tau_gumbel_end - cfg.tau_gumbel_start)
        };
        let mut epoch_loss = 0.0f32;
        let mut counted = 0usize;
        for step in 0..cfg.steps_per_epoch {
            let trip_batch: &[_] = if triplets.is_empty() {
                &[]
            } else {
                let lo = (step * cfg.triplet_batch) % triplets.len();
                let hi = (lo + cfg.triplet_batch).min(triplets.len());
                &triplets[lo..hi]
            };
            let dec_batch: &[_] = if decisions.is_empty() {
                &[]
            } else {
                let lo = (step * cfg.decision_batch) % decisions.len();
                let hi = (lo + cfg.decision_batch).min(decisions.len());
                &decisions[lo..hi]
            };
            if trip_batch.is_empty() && dec_batch.is_empty() {
                continue;
            }

            let mut t = Tape::new();
            let vars = dq.begin(&mut t);
            let vs1 = uncertainty.then(|| t.param(s1.clone()));
            let vs2 = uncertainty.then(|| t.param(s2.clone()));
            let l_n = (!trip_batch.is_empty()).then(|| {
                neighborhood_loss(
                    &mut t, &dq, &vars, data, trip_batch, cfg.sigma, tau_g, &mut rng,
                )
            });
            let l_r = (!dec_batch.is_empty()).then(|| {
                routing_loss(
                    &mut t,
                    &dq,
                    &vars,
                    data,
                    dec_batch,
                    cfg.tau_route,
                    tau_g,
                    &mut rng,
                )
            });
            let mut loss = combine(&mut t, cfg.weighting, l_r, l_n, vs1, vs2);
            if cfg.lambda_recon > 0.0 {
                let ids: Vec<u32> = (0..32)
                    .map(|_| rng.gen_range(0..data.len()) as u32)
                    .collect();
                let l_rec = reconstruction_loss(&mut t, &dq, &vars, data, &ids, tau_g, &mut rng);
                let weighted = t.scale(l_rec, cfg.lambda_recon);
                loss = t.add(loss, weighted);
            }
            epoch_loss += t.value(loss)[(0, 0)];
            counted += 1;

            let grads = t.backward(loss);
            adam.set_lr(sched.lr_at(step_idx));
            step_idx += 1;
            // Assemble (param, grad) pairs in the same order as `sizes`.
            let gw = grads.get(vars.w).cloned();
            let gcb: Vec<Option<Matrix>> = vars
                .codebooks
                .iter()
                .map(|&c| grads.get(c).cloned())
                .collect();
            let gs1 = vs1.and_then(|v| grads.get(v).cloned());
            let gs2 = vs2.and_then(|v| grads.get(v).cloned());
            let mut updates: Vec<(&mut Matrix, Option<&Matrix>)> = Vec::with_capacity(sizes.len());
            updates.push((&mut dq.w, gw.as_ref()));
            for (cb, g) in dq.codebooks.iter_mut().zip(gcb.iter()) {
                updates.push((cb, g.as_ref()));
            }
            if uncertainty {
                updates.push((&mut s1, gs1.as_ref()));
                updates.push((&mut s2, gs2.as_ref()));
            }
            adam.step(&mut updates);
        }
        epoch_losses.push(if counted > 0 {
            epoch_loss / counted as f32
        } else {
            0.0
        });
    }

    let seconds = start.elapsed().as_secs_f32();
    let model_bytes = dq.model_bytes();
    let inner = {
        let learned = dq.export_pq_scaled(seconds, value_scale);
        match &base_rotation {
            Some(r0) => OptimizedProductQuantizer::from_parts(
                r0.matmul(learned.rotation()),
                learned.pq().clone(),
                seconds,
            ),
            None => learned,
        }
    };
    let compressor = RpqCompressor {
        inner,
        label: cfg.mode.label().to_string(),
        model_bytes,
    };
    let stats = TrainStats {
        seconds,
        epoch_losses,
        triplets_sampled,
        decisions_sampled,
    };
    (compressor, stats)
}

/// Root-mean-square of all entries (the global value scale).
fn data_rms(data: &Dataset) -> f32 {
    let n = data.as_flat().len().max(1);
    let ms = data
        .as_flat()
        .iter()
        .map(|&v| (v as f64) * (v as f64))
        .sum::<f64>()
        / n as f64;
    (ms.sqrt() as f32).max(1e-6)
}

fn scale_dataset(data: &Dataset, s: f32) -> Dataset {
    Dataset::from_flat(data.dim(), data.as_flat().iter().map(|&v| v * s).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_data::synth::{SynthConfig, ValueTransform};
    use rpq_graph::VamanaConfig;

    fn setup(n: usize, seed: u64) -> (Dataset, ProximityGraph) {
        let data = SynthConfig {
            dim: 16,
            intrinsic_dim: 6,
            clusters: 6,
            cluster_std: 0.8,
            noise_std: 0.05,
            transform: ValueTransform::Identity,
        }
        .generate(n, seed);
        let graph = VamanaConfig {
            r: 8,
            l: 24,
            ..Default::default()
        }
        .build(&data);
        (data, graph)
    }

    fn fast_cfg(mode: TrainingMode) -> RpqTrainerConfig {
        RpqTrainerConfig {
            quantizer: DiffQuantizerConfig {
                m: 4,
                k: 16,
                ..Default::default()
            },
            mode,
            epochs: 2,
            steps_per_epoch: 6,
            triplet_batch: 16,
            decision_batch: 6,
            routing_sampler: RoutingSamplerConfig {
                n_queries: 6,
                h: 6,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn full_training_produces_working_compressor() {
        let (data, graph) = setup(400, 1);
        let (rpq, stats) = train_rpq(&fast_cfg(TrainingMode::Full), &data, &graph);
        assert_eq!(rpq.name(), "RPQ");
        assert!(stats.seconds > 0.0);
        assert!(stats.triplets_sampled > 0);
        assert!(stats.decisions_sampled > 0);
        assert_eq!(stats.epoch_losses.len(), 2);
        assert!(stats.epoch_losses.iter().all(|l| l.is_finite()));
        // The exported quantizer must encode + estimate sanely.
        let codes = rpq.encode_dataset(&data);
        assert_eq!(codes.len(), 400);
        let q = data.get(0).to_vec();
        let est = rpq.estimator(&codes, &q);
        let d_self = est.distance(0);
        let d_far = est.distance(200);
        assert!(d_self.is_finite() && d_far.is_finite());
    }

    #[test]
    fn ablation_modes_have_correct_labels_and_run() {
        let (data, graph) = setup(300, 2);
        for (mode, label) in [
            (TrainingMode::NeighborOnly, "RPQ w/ N"),
            (TrainingMode::RoutingOnly, "RPQ w/ R"),
            (TrainingMode::PathImitation, "RPQ w/ L2R"),
        ] {
            let (rpq, stats) = train_rpq(&fast_cfg(mode), &data, &graph);
            assert_eq!(rpq.name(), label);
            if mode == TrainingMode::NeighborOnly {
                assert_eq!(stats.decisions_sampled, 0);
            } else {
                assert!(stats.decisions_sampled > 0, "{label} sampled no decisions");
            }
        }
    }

    #[test]
    fn training_reduces_quantized_routing_error() {
        // After training, the quantizer's distance estimates should rank a
        // point's true nearest neighbor better than the PQ-initialised one
        // does on average — check that reconstruction stays reasonable and
        // the rotation departed from identity (training actually moved W).
        let (data, graph) = setup(400, 3);
        let cfg = fast_cfg(TrainingMode::Full);
        let (rpq, _) = train_rpq(&cfg, &data, &graph);
        let rot = rpq.inner().rotation();
        let mut moved = 0.0f32;
        for i in 0..16 {
            for j in 0..16 {
                let expect = if i == j { 1.0 } else { 0.0 };
                moved += (rot[(i, j)] - expect).abs();
            }
        }
        assert!(moved > 1e-4, "rotation never moved: {moved}");
        assert!(
            rpq_linalg::is_orthonormal(rot, 1e-2),
            "rotation must stay orthonormal"
        );
    }

    #[test]
    fn fixed_weighting_works() {
        let (data, graph) = setup(250, 4);
        let cfg = RpqTrainerConfig {
            weighting: LossWeighting::Fixed(0.5),
            ..fast_cfg(TrainingMode::Full)
        };
        let (rpq, stats) = train_rpq(&cfg, &data, &graph);
        assert!(stats.epoch_losses.iter().all(|l| l.is_finite()));
        assert!(rpq.model_bytes() > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (data, graph) = setup(250, 5);
        let cfg = fast_cfg(TrainingMode::Full);
        let (a, _) = train_rpq(&cfg, &data, &graph);
        let (b, _) = train_rpq(&cfg, &data, &graph);
        let ca = a.encode_dataset(&data);
        let cb = b.encode_dataset(&data);
        assert_eq!(ca, cb, "training must be reproducible");
    }
}
