//! NSG construction (Fu et al., VLDB'19): monotonic-path graph built by
//! MRNG-style edge selection over candidate pools gathered from an initial
//! k-NN graph, navigated from a fixed medoid, with a connectivity repair
//! pass so every vertex is reachable from the entry.

use rayon::prelude::*;
use rpq_data::Dataset;
use rpq_linalg::distance::sq_l2;

use crate::construction::{medoid, repair_connectivity, search_adj};
use crate::knn::{brute_force_knn_graph, nn_descent, NnDescentConfig};
use crate::pg::ProximityGraph;

/// NSG build parameters.
#[derive(Clone, Copy, Debug)]
pub struct NsgConfig {
    /// Maximum out-degree R.
    pub r: usize,
    /// Search pool width L when gathering candidates.
    pub l: usize,
    /// Neighbors in the initial k-NN graph.
    pub knn_k: usize,
    /// Below this size the k-NN init is exact brute force; above it,
    /// NN-Descent.
    pub brute_force_threshold: usize,
    pub seed: u64,
}

impl Default for NsgConfig {
    fn default() -> Self {
        Self {
            r: 32,
            l: 64,
            knn_k: 32,
            brute_force_threshold: 4000,
            seed: 0,
        }
    }
}

impl NsgConfig {
    /// Builds the NSG over `data`; the entry vertex is the medoid and every
    /// vertex is guaranteed reachable from it.
    pub fn build(&self, data: &Dataset) -> ProximityGraph {
        let n = data.len();
        assert!(n > 0, "cannot build a graph over an empty dataset");
        if n == 1 {
            return ProximityGraph::from_adjacency(vec![Vec::new()], 0);
        }
        let knn = if n <= self.brute_force_threshold {
            brute_force_knn_graph(data, self.knn_k)
        } else {
            nn_descent(
                data,
                NnDescentConfig {
                    k: self.knn_k,
                    seed: self.seed,
                    ..Default::default()
                },
            )
        };
        self.build_from_knn(data, &knn)
    }

    /// Builds the NSG from a pre-computed k-NN graph.
    pub fn build_from_knn(&self, data: &Dataset, knn: &[Vec<u32>]) -> ProximityGraph {
        let n = data.len();
        assert_eq!(knn.len(), n, "knn graph size mismatch");
        let entry = medoid(data);
        let r = self.r.max(1);

        // Per-node candidate pool: visited set of a search for the node's own
        // vector on the kNN graph, plus its kNN list; then MRNG selection.
        let adj: Vec<Vec<u32>> = (0..n as u32)
            .into_par_iter()
            .map(|v| {
                let mut visited = Vec::new();
                let mut touched = Vec::new();
                let q = data.get(v as usize);
                let (results, expanded) =
                    search_adj(knn, data, q, entry, self.l, &mut visited, &mut touched);
                let mut pool: Vec<(f32, u32)> =
                    Vec::with_capacity(results.len() + expanded.len() + knn[v as usize].len());
                pool.extend(results);
                pool.extend(expanded);
                for &u in &knn[v as usize] {
                    pool.push((sq_l2(q, data.get(u as usize)), u));
                }
                pool.retain(|&(_, u)| u != v);
                pool.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                pool.dedup_by_key(|&mut (_, u)| u);
                mrng_select(v, &pool, data, r)
            })
            .collect();

        let mut adj = adj;
        repair_connectivity(&mut adj, data, knn, entry, r);
        ProximityGraph::from_adjacency(adj, entry)
    }
}

/// MRNG edge selection: scanning the pool ascending by distance to `v`,
/// keep candidate `p` unless some already-selected `q` satisfies
/// `δ(p, q) < δ(p, v)` (i.e. the edge `v→p` is occluded by `v→q→p`).
fn mrng_select(v: u32, pool: &[(f32, u32)], data: &Dataset, r: usize) -> Vec<u32> {
    let mut selected: Vec<u32> = Vec::with_capacity(r);
    for &(d_vp, p) in pool {
        if selected.len() >= r {
            break;
        }
        let pv = data.get(p as usize);
        let occluded = selected
            .iter()
            .any(|&q| sq_l2(pv, data.get(q as usize)) < d_vp);
        if !occluded {
            selected.push(p);
        }
    }
    let _ = v;
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beam::{beam_search, ExactEstimator, SearchScratch};
    use rpq_data::ground_truth::brute_force_knn;
    use rpq_data::synth::{SynthConfig, ValueTransform};

    fn toy(n: usize, seed: u64) -> Dataset {
        SynthConfig {
            dim: 16,
            intrinsic_dim: 6,
            clusters: 8,
            cluster_std: 0.7,
            noise_std: 0.03,
            transform: ValueTransform::Identity,
        }
        .generate(n, seed)
    }

    #[test]
    fn degrees_bounded() {
        let data = toy(300, 1);
        let g = NsgConfig {
            r: 10,
            ..Default::default()
        }
        .build(&data);
        // +slack for connectivity-repair edges
        assert!(g.max_degree() <= 14, "max degree {}", g.max_degree());
    }

    #[test]
    fn full_reachability_guaranteed() {
        let data = toy(400, 2);
        let g = NsgConfig::default().build(&data);
        assert_eq!(g.reachable_from_entry(), 400);
    }

    #[test]
    fn nsg_is_navigable() {
        let data = toy(500, 3);
        let g = NsgConfig::default().build(&data);
        let (_, queries) = data.split_at(480);
        let gt = brute_force_knn(&data, &queries, 10);
        let mut scratch = SearchScratch::new();
        let mut results = Vec::new();
        for q in queries.iter() {
            let est = ExactEstimator::new(&data, q);
            let (res, _) = beam_search(&g, &est, 50, 10, &mut scratch);
            results.push(res.iter().map(|n| n.id).collect::<Vec<_>>());
        }
        let recall = gt.recall(&results);
        assert!(recall > 0.9, "nsg recall too low: {recall}");
    }

    #[test]
    fn tiny_datasets() {
        for n in [1usize, 2, 4] {
            let data = toy(n, 20 + n as u64);
            let g = NsgConfig::default().build(&data);
            assert_eq!(g.len(), n);
            assert_eq!(g.reachable_from_entry(), n);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = toy(150, 4);
        let a = NsgConfig::default().build(&data);
        let b = NsgConfig::default().build(&data);
        assert_eq!(a, b);
    }
}
