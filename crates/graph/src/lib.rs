//! # rpq-graph
//!
//! Proximity-graph (PG) substrate for the RPQ reproduction. The paper
//! integrates its learned quantizer with three mainstream PGs — **Vamana**
//! (DiskANN), **HNSW** and **NSG** — so all three are implemented here from
//! scratch, over a common representation:
//!
//! * [`ProximityGraph`] — frozen CSR adjacency + entry vertex (paper Def. 2),
//! * [`beam::beam_search`] — the routing procedure (paper §3.1 / Alg. 2's
//!   outer loop) generic over a [`beam::DistanceEstimator`], so the same
//!   code routes with exact distances, PQ/ADC distances, or anything else,
//! * [`beam::beam_search_recording`] — the instrumented variant that captures
//!   the ranked candidate set at every next-hop decision, which is exactly
//!   the paper's *routing features* (Def. 6),
//! * [`knn`] — brute-force and NN-Descent k-NN graphs (construction seeds
//!   for NSG),
//! * [`hnsw`], [`nsg`], [`vamana`] — the three builders.
//!
//! Layered HNSW is flattened to its base layer with the hierarchical entry
//! point retained as the PG entry: the base layer of HNSW is itself a
//! navigable small-world graph, and the common entry-vertex abstraction is
//! what the paper's routing definition assumes.

pub mod beam;
mod construction;
pub mod dynamic;
pub mod hnsw;
pub mod knn;
pub mod nsg;
pub mod pg;
pub mod vamana;

pub use beam::{
    beam_search, beam_search_filtered, beam_search_recording, DistanceEstimator, ExactEstimator,
    Frontier, Neighbor, SearchScratch, SearchStats, VertexFilter, VertexPredicate,
};
pub use dynamic::DynamicGraph;
pub use hnsw::HnswConfig;
pub use knn::{brute_force_knn_graph, knn_graph_recall, nn_descent, NnDescentConfig};
pub use nsg::NsgConfig;
pub use pg::{GraphView, ProximityGraph};
pub use vamana::VamanaConfig;
