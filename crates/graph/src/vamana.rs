//! Vamana graph construction — the proximity graph inside DiskANN
//! (Jayaram Subramanya et al., NeurIPS'19), which the paper's hybrid
//! scenario builds on (§7, §8.1).
//!
//! Construction: random R-regular initialisation, then two passes (α = 1,
//! then α = cfg.alpha) where each point is re-linked by greedy search from
//! the medoid followed by RobustPrune, with pruned back-edges. Searches
//! within a batch run in parallel against a snapshot (the standard batched
//! build); updates apply sequentially.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use rpq_data::Dataset;
use rpq_linalg::distance::sq_l2;

use crate::beam::SearchScratch;
use crate::construction::{
    medoid, medoid_subset, repair_connectivity, robust_prune, search_adj, Scored,
};
use crate::dynamic::DynamicGraph;
use crate::pg::ProximityGraph;

/// Vamana build parameters (paper/DiskANN defaults).
#[derive(Clone, Copy, Debug)]
pub struct VamanaConfig {
    /// Maximum out-degree R.
    pub r: usize,
    /// Construction beam width L.
    pub l: usize,
    /// Pruning slack α for the second pass.
    pub alpha: f32,
    /// Batch size for the parallel search phase.
    pub batch: usize,
    pub seed: u64,
}

impl Default for VamanaConfig {
    fn default() -> Self {
        Self {
            r: 32,
            l: 64,
            alpha: 1.2,
            batch: 512,
            seed: 0,
        }
    }
}

impl VamanaConfig {
    /// Builds the Vamana graph for `data`; the entry vertex is the medoid.
    pub fn build(&self, data: &Dataset) -> ProximityGraph {
        let n = data.len();
        assert!(n > 0, "cannot build a graph over an empty dataset");
        let r = self.r.max(1).min(n.saturating_sub(1).max(1));
        if n == 1 {
            return ProximityGraph::from_adjacency(vec![Vec::new()], 0);
        }
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let entry = medoid(data);

        // Random R-regular initialisation.
        let mut adj: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                let mut nbrs = Vec::with_capacity(r);
                while nbrs.len() < r {
                    let j = rng.gen_range(0..n) as u32;
                    if j as usize != i && !nbrs.contains(&j) {
                        nbrs.push(j);
                    }
                }
                nbrs
            })
            .collect();

        let mut order: Vec<u32> = (0..n as u32).collect();
        for pass_alpha in [1.0f32, self.alpha.max(1.0)] {
            // Random insertion order per pass.
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for chunk in order.chunks(self.batch.max(1)) {
                // Parallel search phase against the current snapshot.
                let searched: Vec<(u32, Vec<Scored>)> = chunk
                    .par_iter()
                    .map(|&p| {
                        let mut visited = Vec::new();
                        let mut touched = Vec::new();
                        let (_, expanded) = search_adj(
                            &adj,
                            data,
                            data.get(p as usize),
                            entry,
                            self.l.max(r),
                            &mut visited,
                            &mut touched,
                        );
                        (p, expanded)
                    })
                    .collect();
                // Sequential update phase.
                for (p, mut cands) in searched {
                    for &u in &adj[p as usize] {
                        cands.push((sq_l2(data.get(p as usize), data.get(u as usize)), u));
                    }
                    let selected = robust_prune(p, cands, data, pass_alpha, r);
                    adj[p as usize] = selected.clone();
                    for j in selected {
                        let list = &mut adj[j as usize];
                        if !list.contains(&p) {
                            list.push(p);
                            if list.len() > r {
                                let jc: Vec<Scored> = list
                                    .iter()
                                    .map(|&u| {
                                        (sq_l2(data.get(j as usize), data.get(u as usize)), u)
                                    })
                                    .collect();
                                adj[j as usize] = robust_prune(j, jc, data, pass_alpha, r);
                            }
                        }
                    }
                }
            }
        }
        ProximityGraph::from_adjacency(adj, entry)
    }

    /// FreshDiskANN-style greedy insert into a live graph (DESIGN.md §8.1):
    /// beam-search the new point's vector from the entry, RobustPrune the
    /// expanded set into its out-neighbors, then patch back-edges — any
    /// in-neighbor pushed over the degree bound `r` is re-pruned, exactly
    /// the batch builder's rule.
    ///
    /// Ids are dense: `p` must equal `graph.len()` and `data` must already
    /// hold the vector at index `p`. The scratch is shared with
    /// [`crate::beam_search`] and may be sized for a previous epoch; the
    /// search grows it as needed.
    pub fn insert_point(
        &self,
        graph: &mut DynamicGraph,
        data: &Dataset,
        p: u32,
        scratch: &mut SearchScratch,
    ) {
        assert_eq!(
            graph.len(),
            p as usize,
            "insert ids are dense: expected {}, got {p}",
            graph.len()
        );
        assert!((p as usize) < data.len(), "vector for {p} not in dataset");
        if graph.is_empty() {
            graph.push_vertex(Vec::new());
            graph.set_entry(0);
            return;
        }
        let r = self.r.max(1);
        let alpha = self.alpha.max(1.0);
        let (visited, touched) = scratch.parts_mut();
        let (_, expanded) = search_adj(
            graph.adj(),
            data,
            data.get(p as usize),
            graph.entry(),
            self.l.max(r),
            visited,
            touched,
        );
        let selected = robust_prune(p, expanded, data, alpha, r);
        let id = graph.push_vertex(selected.clone());
        debug_assert_eq!(id, p);
        let adj = graph.adj_mut();
        for j in selected {
            if adj[j as usize].contains(&p) {
                continue;
            }
            adj[j as usize].push(p);
            if adj[j as usize].len() > r {
                let jc: Vec<Scored> = adj[j as usize]
                    .iter()
                    .map(|&u| (sq_l2(data.get(j as usize), data.get(u as usize)), u))
                    .collect();
                adj[j as usize] = robust_prune(j, jc, data, alpha, r);
            }
        }
    }

    /// Eagerly unlinks `p` from a live graph: every in-neighbor `u` is
    /// re-pruned over `(N(u) ∪ N(p)) \ {p}` — the FreshDiskANN delete rule,
    /// which preserves the paths that used to route through `p`. The vertex
    /// itself stays as an isolated hole (ids are positional); the streaming
    /// index instead tombstones deletes and batches this work into
    /// [`VamanaConfig::consolidate`], so this hook is for callers that want
    /// the graph clean immediately.
    ///
    /// If `p` was the entry, the entry moves to its nearest out-neighbor
    /// (or the smallest live id when `p` had none).
    pub fn remove_point(&self, graph: &mut DynamicGraph, data: &Dataset, p: u32) {
        let n = graph.len();
        assert!((p as usize) < n, "remove of unknown vertex {p}");
        let r = self.r.max(1);
        let alpha = self.alpha.max(1.0);
        let p_out: Vec<u32> = graph.neighbors(p).to_vec();
        for u in 0..n as u32 {
            if u == p || !graph.neighbors(u).contains(&p) {
                continue;
            }
            let uv = data.get(u as usize);
            let cands: Vec<Scored> = graph
                .neighbors(u)
                .iter()
                .chain(p_out.iter())
                .filter(|&&x| x != p && x != u)
                .map(|&x| (sq_l2(uv, data.get(x as usize)), x))
                .collect();
            graph.set_neighbors(u, robust_prune(u, cands, data, alpha, r));
        }
        graph.adj_mut()[p as usize].clear();
        if graph.entry() == p && n > 1 {
            let new_entry = p_out
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let da = sq_l2(data.get(p as usize), data.get(a as usize));
                    let db = sq_l2(data.get(p as usize), data.get(b as usize));
                    da.total_cmp(&db).then(a.cmp(&b))
                })
                .unwrap_or(if p == 0 { 1 } else { 0 });
            graph.set_entry(new_entry);
        }
    }

    /// Batch tombstone reclamation (DESIGN.md §8.3): re-links every live
    /// vertex that pointed at a deleted one (candidates = its live neighbors
    /// plus the live neighbors of its deleted neighbors, RobustPruned),
    /// compacts the graph to the survivors (ids remapped to be dense,
    /// ascending in old-id order), re-centres the entry on the survivors'
    /// medoid, and repairs reachability capacity-aware.
    ///
    /// `deleted` is positional over the current graph; `data` is the
    /// *old-id-space* dataset. Returns the survivors' old ids — new id `i`
    /// is old id `survivors[i]`, the order side stores compact by.
    pub fn consolidate(
        &self,
        graph: &mut DynamicGraph,
        data: &Dataset,
        deleted: &[bool],
    ) -> Vec<u32> {
        let n = graph.len();
        assert_eq!(deleted.len(), n, "tombstone bitmap size mismatch");
        let r = self.r.max(1);
        let alpha = self.alpha.max(1.0);

        // Re-link around tombstones while old ids are still valid.
        for u in 0..n as u32 {
            if deleted[u as usize] {
                continue;
            }
            if !graph.neighbors(u).iter().any(|&x| deleted[x as usize]) {
                continue;
            }
            let uv = data.get(u as usize);
            let mut cands: Vec<Scored> = Vec::new();
            for &x in graph.neighbors(u) {
                if deleted[x as usize] {
                    for &y in graph.neighbors(x) {
                        if !deleted[y as usize] && y != u {
                            cands.push((sq_l2(uv, data.get(y as usize)), y));
                        }
                    }
                } else {
                    cands.push((sq_l2(uv, data.get(x as usize)), x));
                }
            }
            graph.set_neighbors(u, robust_prune(u, cands, data, alpha, r));
        }

        // Compact: drop tombstoned vertices and remap the survivors dense.
        let survivors: Vec<u32> = (0..n as u32).filter(|&v| !deleted[v as usize]).collect();
        let mut remap = vec![u32::MAX; n];
        for (new, &old) in survivors.iter().enumerate() {
            remap[old as usize] = new as u32;
        }
        let old_adj = std::mem::take(graph.adj_mut());
        let new_adj: Vec<Vec<u32>> = survivors
            .iter()
            .map(|&old| {
                old_adj[old as usize]
                    .iter()
                    .filter(|&&x| !deleted[x as usize])
                    .map(|&x| remap[x as usize])
                    .collect()
            })
            .collect();
        *graph.adj_mut() = new_adj;
        if survivors.is_empty() {
            // Entry is meaningless on an empty graph; searches short-circuit.
            return survivors;
        }
        graph.set_entry(remap[medoid_subset(data, &survivors) as usize]);

        let idx: Vec<usize> = survivors.iter().map(|&v| v as usize).collect();
        let compacted = data.subset(&idx);
        self.repair_reachability(graph, &compacted);
        survivors
    }

    /// Makes every vertex reachable from the entry again after incremental
    /// edits, using each vertex's own adjacency snapshot as attach
    /// candidates (capacity-aware: the shared NSG repair rule, PR-1 fix).
    /// `data` must be in the graph's current id space.
    pub fn repair_reachability(&self, graph: &mut DynamicGraph, data: &Dataset) {
        assert_eq!(graph.len(), data.len(), "graph/dataset size mismatch");
        if graph.len() <= 1 {
            return;
        }
        let knn: Vec<Vec<u32>> = graph.adj().to_vec();
        let entry = graph.entry();
        repair_connectivity(graph.adj_mut(), data, &knn, entry, self.r.max(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beam::{beam_search, ExactEstimator, SearchScratch};
    use rpq_data::ground_truth::brute_force_knn;
    use rpq_data::synth::{SynthConfig, ValueTransform};

    fn toy(n: usize, seed: u64) -> Dataset {
        SynthConfig {
            dim: 16,
            intrinsic_dim: 6,
            clusters: 8,
            cluster_std: 0.7,
            noise_std: 0.03,
            transform: ValueTransform::Identity,
        }
        .generate(n, seed)
    }

    #[test]
    fn degrees_bounded_by_r() {
        let data = toy(300, 1);
        let g = VamanaConfig {
            r: 12,
            l: 32,
            ..Default::default()
        }
        .build(&data);
        assert!(g.max_degree() <= 12, "max degree {}", g.max_degree());
    }

    #[test]
    fn graph_is_navigable() {
        let data = toy(500, 2);
        let g = VamanaConfig::default().build(&data);
        let (base_q, queries) = data.split_at(480);
        // Search for held-out points' neighbors within the built graph.
        let gt = brute_force_knn(&data, &queries, 10);
        let mut scratch = SearchScratch::new();
        let mut results = Vec::new();
        for q in queries.iter() {
            let est = ExactEstimator::new(&data, q);
            let (res, _) = beam_search(&g, &est, 50, 10, &mut scratch);
            results.push(res.iter().map(|n| n.id).collect::<Vec<_>>());
        }
        let recall = gt.recall(&results);
        assert!(recall > 0.9, "vamana recall too low: {recall}");
        drop(base_q);
    }

    #[test]
    fn reachability_is_high() {
        let data = toy(400, 3);
        let g = VamanaConfig::default().build(&data);
        let reach = g.reachable_from_entry();
        assert!(reach as f32 > 0.99 * 400.0, "only {reach}/400 reachable");
    }

    #[test]
    fn single_point_dataset() {
        let mut data = Dataset::new(2);
        data.push(&[1.0, 2.0]);
        let g = VamanaConfig::default().build(&data);
        assert_eq!(g.len(), 1);
        assert_eq!(g.entry(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = toy(150, 4);
        let a = VamanaConfig {
            seed: 9,
            ..Default::default()
        }
        .build(&data);
        let b = VamanaConfig {
            seed: 9,
            ..Default::default()
        }
        .build(&data);
        assert_eq!(a, b);
    }

    #[test]
    fn incremental_insert_is_navigable() {
        // Grow a graph one point at a time from empty; it must stay within
        // the degree bound and find inserted points by exact search.
        let data = toy(250, 11);
        let cfg = VamanaConfig {
            r: 12,
            l: 32,
            ..Default::default()
        };
        let mut g = crate::DynamicGraph::new();
        let mut scratch = SearchScratch::new();
        for p in 0..data.len() as u32 {
            cfg.insert_point(&mut g, &data, p, &mut scratch);
        }
        assert_eq!(g.len(), data.len());
        assert!(g.max_degree() <= 12, "max degree {}", g.max_degree());
        let gt = brute_force_knn(&data, &data, 1);
        let mut hits = 0;
        for (qi, q) in data.iter().enumerate() {
            let est = crate::ExactEstimator::new(&data, q);
            let (res, _) = beam_search(&g, &est, 32, 1, &mut scratch);
            if res.first().map(|n| n.id) == Some(gt.neighbors[qi][0]) {
                hits += 1;
            }
        }
        let recall = hits as f32 / data.len() as f32;
        assert!(recall > 0.9, "self-recall after pure inserts: {recall}");
    }

    #[test]
    fn remove_point_unlinks_and_patches() {
        let data = toy(120, 12);
        let cfg = VamanaConfig {
            r: 10,
            l: 24,
            ..Default::default()
        };
        let mut g = crate::DynamicGraph::from_graph(&cfg.build(&data));
        let victim = 17u32;
        cfg.remove_point(&mut g, &data, victim);
        assert!(g.neighbors(victim).is_empty(), "victim keeps out-edges");
        for v in 0..g.len() as u32 {
            assert!(
                !g.neighbors(v).contains(&victim),
                "{v} still points at removed {victim}"
            );
        }
        assert_ne!(g.entry(), victim);
    }

    #[test]
    fn consolidate_compacts_and_repairs() {
        let data = toy(200, 13);
        let cfg = VamanaConfig {
            r: 10,
            l: 24,
            ..Default::default()
        };
        let mut g = crate::DynamicGraph::from_graph(&cfg.build(&data));
        let mut deleted = vec![false; 200];
        for i in (0..200).step_by(4) {
            deleted[i] = true;
        }
        let survivors = cfg.consolidate(&mut g, &data, &deleted);
        assert_eq!(survivors.len(), 150);
        assert!(survivors.iter().all(|&v| !deleted[v as usize]));
        assert!(survivors.windows(2).all(|w| w[0] < w[1]), "ascending ids");
        assert_eq!(g.len(), 150);
        assert_eq!(g.reachable_from_entry(), 150, "repair must reconnect");
        // Degree bound with the repair slack (cap = r + 2).
        assert!(g.max_degree() <= 12, "max degree {}", g.max_degree());
    }

    #[test]
    fn consolidate_everything_leaves_empty_graph() {
        let data = toy(40, 14);
        let cfg = VamanaConfig::default();
        let mut g = crate::DynamicGraph::from_graph(&cfg.build(&data));
        let survivors = cfg.consolidate(&mut g, &data, &[true; 40]);
        assert!(survivors.is_empty());
        assert!(g.is_empty());
    }
}
