//! Vamana graph construction — the proximity graph inside DiskANN
//! (Jayaram Subramanya et al., NeurIPS'19), which the paper's hybrid
//! scenario builds on (§7, §8.1).
//!
//! Construction: random R-regular initialisation, then two passes (α = 1,
//! then α = cfg.alpha) where each point is re-linked by greedy search from
//! the medoid followed by RobustPrune, with pruned back-edges. Searches
//! within a batch run in parallel against a snapshot (the standard batched
//! build); updates apply sequentially.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use rpq_data::Dataset;
use rpq_linalg::distance::sq_l2;

use crate::construction::{medoid, robust_prune, search_adj, Scored};
use crate::pg::ProximityGraph;

/// Vamana build parameters (paper/DiskANN defaults).
#[derive(Clone, Copy, Debug)]
pub struct VamanaConfig {
    /// Maximum out-degree R.
    pub r: usize,
    /// Construction beam width L.
    pub l: usize,
    /// Pruning slack α for the second pass.
    pub alpha: f32,
    /// Batch size for the parallel search phase.
    pub batch: usize,
    pub seed: u64,
}

impl Default for VamanaConfig {
    fn default() -> Self {
        Self {
            r: 32,
            l: 64,
            alpha: 1.2,
            batch: 512,
            seed: 0,
        }
    }
}

impl VamanaConfig {
    /// Builds the Vamana graph for `data`; the entry vertex is the medoid.
    pub fn build(&self, data: &Dataset) -> ProximityGraph {
        let n = data.len();
        assert!(n > 0, "cannot build a graph over an empty dataset");
        let r = self.r.max(1).min(n.saturating_sub(1).max(1));
        if n == 1 {
            return ProximityGraph::from_adjacency(vec![Vec::new()], 0);
        }
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let entry = medoid(data);

        // Random R-regular initialisation.
        let mut adj: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                let mut nbrs = Vec::with_capacity(r);
                while nbrs.len() < r {
                    let j = rng.gen_range(0..n) as u32;
                    if j as usize != i && !nbrs.contains(&j) {
                        nbrs.push(j);
                    }
                }
                nbrs
            })
            .collect();

        let mut order: Vec<u32> = (0..n as u32).collect();
        for pass_alpha in [1.0f32, self.alpha.max(1.0)] {
            // Random insertion order per pass.
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for chunk in order.chunks(self.batch.max(1)) {
                // Parallel search phase against the current snapshot.
                let searched: Vec<(u32, Vec<Scored>)> = chunk
                    .par_iter()
                    .map(|&p| {
                        let mut visited = Vec::new();
                        let mut touched = Vec::new();
                        let (_, expanded) = search_adj(
                            &adj,
                            data,
                            data.get(p as usize),
                            entry,
                            self.l.max(r),
                            &mut visited,
                            &mut touched,
                        );
                        (p, expanded)
                    })
                    .collect();
                // Sequential update phase.
                for (p, mut cands) in searched {
                    for &u in &adj[p as usize] {
                        cands.push((sq_l2(data.get(p as usize), data.get(u as usize)), u));
                    }
                    let selected = robust_prune(p, cands, data, pass_alpha, r);
                    adj[p as usize] = selected.clone();
                    for j in selected {
                        let list = &mut adj[j as usize];
                        if !list.contains(&p) {
                            list.push(p);
                            if list.len() > r {
                                let jc: Vec<Scored> = list
                                    .iter()
                                    .map(|&u| {
                                        (sq_l2(data.get(j as usize), data.get(u as usize)), u)
                                    })
                                    .collect();
                                adj[j as usize] = robust_prune(j, jc, data, pass_alpha, r);
                            }
                        }
                    }
                }
            }
        }
        ProximityGraph::from_adjacency(adj, entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beam::{beam_search, ExactEstimator, SearchScratch};
    use rpq_data::ground_truth::brute_force_knn;
    use rpq_data::synth::{SynthConfig, ValueTransform};

    fn toy(n: usize, seed: u64) -> Dataset {
        SynthConfig {
            dim: 16,
            intrinsic_dim: 6,
            clusters: 8,
            cluster_std: 0.7,
            noise_std: 0.03,
            transform: ValueTransform::Identity,
        }
        .generate(n, seed)
    }

    #[test]
    fn degrees_bounded_by_r() {
        let data = toy(300, 1);
        let g = VamanaConfig {
            r: 12,
            l: 32,
            ..Default::default()
        }
        .build(&data);
        assert!(g.max_degree() <= 12, "max degree {}", g.max_degree());
    }

    #[test]
    fn graph_is_navigable() {
        let data = toy(500, 2);
        let g = VamanaConfig::default().build(&data);
        let (base_q, queries) = data.split_at(480);
        // Search for held-out points' neighbors within the built graph.
        let gt = brute_force_knn(&data, &queries, 10);
        let mut scratch = SearchScratch::new();
        let mut results = Vec::new();
        for q in queries.iter() {
            let est = ExactEstimator::new(&data, q);
            let (res, _) = beam_search(&g, &est, 50, 10, &mut scratch);
            results.push(res.iter().map(|n| n.id).collect::<Vec<_>>());
        }
        let recall = gt.recall(&results);
        assert!(recall > 0.9, "vamana recall too low: {recall}");
        drop(base_q);
    }

    #[test]
    fn reachability_is_high() {
        let data = toy(400, 3);
        let g = VamanaConfig::default().build(&data);
        let reach = g.reachable_from_entry();
        assert!(reach as f32 > 0.99 * 400.0, "only {reach}/400 reachable");
    }

    #[test]
    fn single_point_dataset() {
        let mut data = Dataset::new(2);
        data.push(&[1.0, 2.0]);
        let g = VamanaConfig::default().build(&data);
        assert_eq!(g.len(), 1);
        assert_eq!(g.entry(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = toy(150, 4);
        let a = VamanaConfig {
            seed: 9,
            ..Default::default()
        }
        .build(&data);
        let b = VamanaConfig {
            seed: 9,
            ..Default::default()
        }
        .build(&data);
        assert_eq!(a, b);
    }
}
