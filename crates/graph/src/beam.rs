//! Beam-search routing over a proximity graph (paper §3.1), generic over the
//! distance oracle.
//!
//! The same routine serves three masters:
//! * exact search (graph construction, ground-truth style routing),
//! * PQ-integrated search (the estimator is an ADC lookup table),
//! * routing-feature extraction (the [`beam_search_recording`] variant
//!   mirrors paper Alg. 2 and captures each ranked candidate set `bᵢ`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rpq_data::Dataset;
use rpq_linalg::distance::sq_l2;

use crate::pg::{GraphView, ProximityGraph};

/// A distance oracle from an implicit query to any graph vertex. One value
/// per `(query, index)` pair — implementations capture the query on
/// construction (e.g. an ADC lookup table is built once per query).
pub trait DistanceEstimator {
    /// Estimated distance from the captured query to vertex `node`.
    fn distance(&self, node: u32) -> f32;

    /// Scores a batch of vertices into `out` (same length as `nodes`).
    ///
    /// [`beam_search`] routes every expansion's unvisited neighbors through
    /// this method, so estimators with a block kernel (e.g. the SoA ADC
    /// kernels in `rpq-quant`) get register-friendly batches without any
    /// caller changes. The default loops over [`DistanceEstimator::distance`].
    ///
    /// Contract: implementations must return **bit-identical** values to
    /// per-node `distance` calls — batching is a layout/throughput
    /// optimisation, never a numerical one — so search results are
    /// independent of how candidates happen to be blocked.
    fn distance_batch(&self, nodes: &[u32], out: &mut [f32]) {
        debug_assert_eq!(nodes.len(), out.len(), "nodes/out length mismatch");
        for (o, &n) in out.iter_mut().zip(nodes) {
            *o = self.distance(n);
        }
    }
}

/// Exact squared-Euclidean distances against the original vectors.
pub struct ExactEstimator<'a> {
    data: &'a Dataset,
    query: &'a [f32],
}

impl<'a> ExactEstimator<'a> {
    pub fn new(data: &'a Dataset, query: &'a [f32]) -> Self {
        assert_eq!(data.dim(), query.len(), "query dimension mismatch");
        Self { data, query }
    }
}

impl DistanceEstimator for ExactEstimator<'_> {
    #[inline]
    fn distance(&self, node: u32) -> f32 {
        sq_l2(self.query, self.data.get(node as usize))
    }
}

impl<T: DistanceEstimator + ?Sized> DistanceEstimator for &T {
    #[inline]
    fn distance(&self, node: u32) -> f32 {
        (**self).distance(node)
    }
    #[inline]
    fn distance_batch(&self, nodes: &[u32], out: &mut [f32]) {
        (**self).distance_batch(nodes, out)
    }
}

impl<T: DistanceEstimator + ?Sized> DistanceEstimator for Box<T> {
    #[inline]
    fn distance(&self, node: u32) -> f32 {
        (**self).distance(node)
    }
    #[inline]
    fn distance_batch(&self, nodes: &[u32], out: &mut [f32]) {
        (**self).distance_batch(nodes, out)
    }
}

/// A vertex predicate for [`beam_search_filtered`]: `accept(v)` decides
/// whether `v` may appear in the result set. Rejected vertices are still
/// traversed (scored, kept in the working beam, expanded), so graph
/// connectivity survives any predicate — see [`beam_search_filtered`].
///
/// Every `Fn(u32) -> bool` closure is a `VertexPredicate` via the blanket
/// impl, so ad-hoc call sites keep working; [`VertexFilter`] is the
/// first-class composable instance the index layers share.
pub trait VertexPredicate {
    /// Whether vertex `v` may be returned as a result.
    fn accept(&self, v: u32) -> bool;
}

impl<F: Fn(u32) -> bool> VertexPredicate for F {
    #[inline]
    fn accept(&self, v: u32) -> bool {
        self(v)
    }
}

/// The first-class filter composing the two predicate sources every index
/// has: a tombstone bitmap (deleted-but-not-yet-consolidated vertices,
/// DESIGN.md §8.2) and an arbitrary user predicate (label filters,
/// DESIGN.md §12). Tombstones are thereby *one instance* of vertex
/// filtering, not a special case: `VertexFilter::tombstones(t)` behaves
/// bit-identically to the hand-rolled `|v| !t[v as usize]` closure the
/// streaming index used to build.
///
/// An empty filter ([`VertexFilter::all`]) accepts everything and keeps
/// [`beam_search_filtered`] bit-identical to [`beam_search`].
#[derive(Clone, Copy, Default)]
pub struct VertexFilter<'a> {
    tombstones: Option<&'a [bool]>,
    predicate: Option<&'a dyn Fn(u32) -> bool>,
}

impl<'a> VertexFilter<'a> {
    /// Accepts every vertex — the unfiltered path.
    pub fn all() -> Self {
        Self::default()
    }

    /// Accepts vertices whose tombstone slot is `false`.
    pub fn tombstones(tombstones: &'a [bool]) -> Self {
        Self {
            tombstones: Some(tombstones),
            predicate: None,
        }
    }

    /// Accepts vertices satisfying `predicate`.
    pub fn predicate(predicate: &'a dyn Fn(u32) -> bool) -> Self {
        Self {
            tombstones: None,
            predicate: Some(predicate),
        }
    }

    /// This filter further restricted by a tombstone bitmap.
    pub fn and_tombstones(mut self, tombstones: &'a [bool]) -> Self {
        self.tombstones = Some(tombstones);
        self
    }

    /// This filter further restricted by a user predicate.
    pub fn and_predicate(mut self, predicate: &'a dyn Fn(u32) -> bool) -> Self {
        self.predicate = Some(predicate);
        self
    }

    /// True when no tombstone map and no predicate is attached — the
    /// filter cannot reject anything, so the caller may take the
    /// unfiltered fast path.
    pub fn is_all(&self) -> bool {
        self.tombstones.is_none() && self.predicate.is_none()
    }
}

impl VertexPredicate for VertexFilter<'_> {
    #[inline]
    fn accept(&self, v: u32) -> bool {
        if let Some(t) = self.tombstones {
            if t[v as usize] {
                return false;
            }
        }
        match self.predicate {
            Some(p) => p(v),
            None => true,
        }
    }
}

/// A scored vertex.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    pub id: u32,
    pub dist: f32,
}

/// Routing statistics: `hops` is the number of next-hop selections (vertex
/// expansions) and `dist_comps` the number of estimator invocations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    pub hops: usize,
    pub dist_comps: usize,
}

/// Reusable per-thread search state: a visited map with O(touched) reset so
/// repeated queries allocate nothing (perf-book: reuse workhorse
/// collections).
#[derive(Default)]
pub struct SearchScratch {
    visited: Vec<bool>,
    touched: Vec<u32>,
    /// Unvisited neighbors of the current expansion, gathered so the
    /// estimator can score them as one batch.
    frontier: Vec<u32>,
    /// Their batch-scored distances (parallel to `frontier`).
    dists: Vec<f32>,
    /// Reusable pipeline-stage buffer for [`SearchScratch::pop_frontier_batch`].
    stage: Vec<(f32, u32)>,
    /// Flat per-vertex f32 slot map with the same epoch-reset discipline as
    /// `visited` — external engines memoise exact distances here instead of
    /// in a per-query `HashMap`.
    memo_vals: Vec<f32>,
    memo_marked: Vec<bool>,
    memo_touched: Vec<u32>,
}

impl SearchScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch whose visited map is pre-sized for graphs of up to `n`
    /// vertices, so even the first query allocates nothing. Long-lived
    /// search workers (e.g. the serving layer's thread pool, DESIGN.md §7)
    /// size their scratch to the largest index they route to.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            visited: vec![false; n],
            touched: Vec::with_capacity(256),
            frontier: Vec::with_capacity(64),
            dists: Vec::with_capacity(64),
            stage: Vec::new(),
            memo_vals: Vec::new(),
            memo_marked: Vec::new(),
            memo_touched: Vec::new(),
        }
    }

    /// Heap bytes currently held — the per-worker memory cost of keeping a
    /// scratch alive between queries.
    pub fn memory_bytes(&self) -> usize {
        self.visited.capacity() * std::mem::size_of::<bool>()
            + self.touched.capacity() * std::mem::size_of::<u32>()
            + self.frontier.capacity() * std::mem::size_of::<u32>()
            + self.dists.capacity() * std::mem::size_of::<f32>()
            + self.stage.capacity() * std::mem::size_of::<(f32, u32)>()
            + self.memo_vals.capacity() * std::mem::size_of::<f32>()
            + self.memo_marked.capacity() * std::mem::size_of::<bool>()
            + self.memo_touched.capacity() * std::mem::size_of::<u32>()
    }

    /// Forgets all visited marks without releasing memory. `beam_search`
    /// resets incrementally on entry, so calling this between queries is
    /// optional; it exists for callers that want a scratch handed to a new
    /// index in a known-clean state.
    ///
    /// Epoch safety: a scratch outlives index mutations (DESIGN.md §8). The
    /// index may have *grown* since the marks were made (the visited map was
    /// resized up by the search that made them) or *shrunk* via
    /// [`SearchScratch::shrink_to`] after a consolidation pass — so stale
    /// marks are cleared through a bounds-checked access instead of assuming
    /// every recorded index still fits the map.
    pub fn reset(&mut self) {
        for &t in &self.touched {
            if let Some(slot) = self.visited.get_mut(t as usize) {
                *slot = false;
            }
        }
        self.touched.clear();
        for &t in &self.memo_touched {
            if let Some(slot) = self.memo_marked.get_mut(t as usize) {
                *slot = false;
            }
        }
        self.memo_touched.clear();
    }

    /// Shrinks the visited map to `n` slots and releases the excess — what a
    /// long-lived worker calls after its index consolidated away tombstones,
    /// so scratch memory tracks the live index instead of the all-time peak.
    /// Marks beyond the new length are dropped with the slots they pointed
    /// at; the rest stay clearable by [`SearchScratch::reset`].
    pub fn shrink_to(&mut self, n: usize) {
        self.visited.truncate(n);
        self.visited.shrink_to_fit();
        self.touched.retain(|&t| (t as usize) < n);
        self.memo_vals.truncate(n);
        self.memo_vals.shrink_to_fit();
        self.memo_marked.truncate(n);
        self.memo_marked.shrink_to_fit();
        self.memo_touched.retain(|&t| (t as usize) < n);
    }

    fn prepare(&mut self, n: usize) {
        if self.visited.len() < n {
            self.visited.resize(n, false);
        }
        self.reset();
    }

    /// The raw visited/touched pair, for crate-internal search routines
    /// (graph construction and incremental insertion) that share this
    /// scratch with [`beam_search`].
    pub(crate) fn parts_mut(&mut self) -> (&mut Vec<bool>, &mut Vec<u32>) {
        (&mut self.visited, &mut self.touched)
    }

    #[inline]
    fn mark(&mut self, v: u32) -> bool {
        let slot = &mut self.visited[v as usize];
        if *slot {
            false
        } else {
            *slot = true;
            self.touched.push(v);
            true
        }
    }

    /// Prepares the scratch for an externally-driven search over `n`
    /// vertices: visited marks and the exact-distance memo are sized and
    /// cleared. [`beam_search`] does this internally; engines that drive
    /// their own traversal (the disk engine's pipelined beam) call this
    /// once per query, then [`SearchScratch::visit`] /
    /// [`SearchScratch::memo_insert`] during it.
    pub fn begin(&mut self, n: usize) {
        self.prepare(n);
        if self.memo_vals.len() < n {
            self.memo_vals.resize(n, 0.0);
            self.memo_marked.resize(n, false);
        }
    }

    /// Marks `v` visited; `true` when it was unvisited (first sight). The
    /// public face of the epoch-reset visited map for external engines;
    /// valid between [`SearchScratch::begin`] and the next reset.
    #[inline]
    pub fn visit(&mut self, v: u32) -> bool {
        self.mark(v)
    }

    /// Memoises a per-vertex f32 (the disk engine's exact distances) in the
    /// flat slot map. Overwrites any value from the same epoch.
    #[inline]
    pub fn memo_insert(&mut self, v: u32, val: f32) {
        let i = v as usize;
        if !self.memo_marked[i] {
            self.memo_marked[i] = true;
            self.memo_touched.push(v);
        }
        self.memo_vals[i] = val;
    }

    /// The value memoised for `v` this epoch, if any.
    #[inline]
    pub fn memo_get(&self, v: u32) -> Option<f32> {
        let i = v as usize;
        if i < self.memo_marked.len() && self.memo_marked[i] {
            Some(self.memo_vals[i])
        } else {
            None
        }
    }

    /// Pops up to `width` candidates off `frontier` into a reusable stage
    /// buffer, stopping early at the first candidate whose distance
    /// exceeds `bound` (the serial termination test, applied per pop — at
    /// `width = 1` this is exactly one iteration of the serial loop).
    /// An empty result means the search is done: the bound can only
    /// tighten, so a candidate rejected now stays rejected. Return the
    /// buffer with [`SearchScratch::recycle_stage`] after processing.
    pub fn pop_frontier_batch(
        &mut self,
        frontier: &mut Frontier,
        width: usize,
        bound: f32,
    ) -> Vec<(f32, u32)> {
        let mut stage = std::mem::take(&mut self.stage);
        stage.clear();
        while stage.len() < width.max(1) {
            match frontier.peek() {
                Some((d, _)) if d.partial_cmp(&bound) == Some(std::cmp::Ordering::Greater) => break,
                Some(_) => stage.push(frontier.pop().expect("peeked")),
                None => break,
            }
        }
        stage
    }

    /// Hands a drained stage buffer back for reuse by the next
    /// [`SearchScratch::pop_frontier_batch`].
    pub fn recycle_stage(&mut self, stage: Vec<(f32, u32)>) {
        self.stage = stage;
    }

    /// Takes the neighbor-gather buffers (ids, distances) for an external
    /// engine's expansion loop; return them with
    /// [`SearchScratch::put_gather`]. The same buffers [`beam_search`]
    /// reuses internally, so a scratch shared across backends keeps one
    /// allocation.
    pub fn take_gather(&mut self) -> (Vec<u32>, Vec<f32>) {
        (
            std::mem::take(&mut self.frontier),
            std::mem::take(&mut self.dists),
        )
    }

    /// Returns buffers taken by [`SearchScratch::take_gather`].
    pub fn put_gather(&mut self, ids: Vec<u32>, dists: Vec<f32>) {
        self.frontier = ids;
        self.dists = dists;
    }
}

/// A min-heap of `(estimated distance, vertex)` candidates with the same
/// deterministic `(distance, id)` ordering as [`beam_search`]'s internal
/// candidate heap — for engines that drive their own traversal and want
/// batched pops ([`SearchScratch::pop_frontier_batch`]), e.g. the disk
/// engine's pipelined beam (DiskANN's beam width `W`).
#[derive(Default)]
pub struct Frontier {
    heap: BinaryHeap<Reverse<Scored>>,
}

impl Frontier {
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a scored vertex.
    #[inline]
    pub fn push(&mut self, dist: f32, id: u32) {
        self.heap.push(Reverse(Scored(dist, id)));
    }

    /// Removes and returns the closest candidate.
    #[inline]
    pub fn pop(&mut self) -> Option<(f32, u32)> {
        self.heap.pop().map(|Reverse(Scored(d, v))| (d, v))
    }

    /// The closest candidate without removing it.
    #[inline]
    pub fn peek(&self) -> Option<(f32, u32)> {
        self.heap.peek().map(|Reverse(Scored(d, v))| (*d, *v))
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// Ordered f32 wrapper for heaps.
#[derive(PartialEq)]
struct Scored(f32, u32);
impl Eq for Scored {}
impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scored {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// Beam search from the graph's entry vertex: returns the top-`k` vertices
/// by estimated distance (ascending) plus routing statistics. `ef` is the
/// beam width `h` (clamped up to `k`).
pub fn beam_search<G: GraphView>(
    graph: &G,
    est: &impl DistanceEstimator,
    ef: usize,
    k: usize,
    scratch: &mut SearchScratch,
) -> (Vec<Neighbor>, SearchStats) {
    beam_search_filtered(graph, est, ef, k, scratch, |_| true)
}

/// [`beam_search`] with a result filter: vertices failing `accept` are
/// **traversed but never returned** — they are scored, kept in the working
/// beam, and expanded exactly as if unfiltered, so graph connectivity (and
/// the routing path) survives intact. This is the tombstone semantics of the
/// streaming index (DESIGN.md §8.2): deleted points keep carrying traffic
/// until a consolidation pass re-links their neighborhoods.
///
/// With an all-accepting filter the result is bit-identical to
/// [`beam_search`]: the accepted set then contains exactly the working
/// beam's vertices (a vertex rejected by a full beam at visit time can never
/// re-enter, since the beam's worst distance only decreases).
///
/// `accept` is any [`VertexPredicate`]: a plain closure, or the composable
/// [`VertexFilter`] (tombstones + user predicate) the index layers share.
/// This dual-heap variant is the *filter-during-traversal* strategy of
/// DESIGN.md §12; the post-filter-with-ef-inflation alternative is built
/// on [`beam_search`] at the index layer.
pub fn beam_search_filtered<G: GraphView>(
    graph: &G,
    est: &impl DistanceEstimator,
    ef: usize,
    k: usize,
    scratch: &mut SearchScratch,
    accept: impl VertexPredicate,
) -> (Vec<Neighbor>, SearchStats) {
    let ef = ef.max(k).max(1);
    let mut stats = SearchStats::default();
    if graph.is_empty() {
        return (Vec::new(), stats);
    }
    scratch.prepare(graph.len());

    let entry = graph.entry();
    scratch.mark(entry);
    let d0 = est.distance(entry);
    stats.dist_comps += 1;

    // `candidates`: min-heap of frontier vertices; `working`: bounded
    // max-heap of the best `ef` seen regardless of filter (the global
    // candidate set of Alg. 2 — it drives admission and termination);
    // `accepted`: bounded max-heap of the best `ef` accepted vertices,
    // which is what the caller gets.
    let mut candidates: BinaryHeap<Reverse<Scored>> = BinaryHeap::new();
    let mut working: BinaryHeap<Scored> = BinaryHeap::with_capacity(ef + 1);
    let mut accepted: BinaryHeap<Scored> = BinaryHeap::with_capacity(ef + 1);
    candidates.push(Reverse(Scored(d0, entry)));
    working.push(Scored(d0, entry));
    if accept.accept(entry) {
        accepted.push(Scored(d0, entry));
    }

    // The expansion's unvisited neighbors are gathered first and scored as
    // one `distance_batch` call (the SoA ADC kernels turn this into a
    // block-processed table pass, DESIGN.md §9). Distances never depend on
    // heap state, and admission below runs in the same neighbor order with
    // the same (bit-identical, per the estimator contract) values — so this
    // restructure cannot change any result, only the memory access pattern.
    let mut frontier = std::mem::take(&mut scratch.frontier);
    let mut dists = std::mem::take(&mut scratch.dists);
    while let Some(Reverse(Scored(d, v))) = candidates.pop() {
        let worst = working.peek().map(|s| s.0).unwrap_or(f32::INFINITY);
        if working.len() == ef && d > worst {
            break;
        }
        stats.hops += 1;
        frontier.clear();
        for &u in graph.neighbors(v) {
            if scratch.mark(u) {
                frontier.push(u);
            }
        }
        dists.clear();
        dists.resize(frontier.len(), 0.0);
        est.distance_batch(&frontier, &mut dists);
        stats.dist_comps += frontier.len();
        for (&u, &du) in frontier.iter().zip(dists.iter()) {
            let worst = working.peek().map(|s| s.0).unwrap_or(f32::INFINITY);
            if working.len() < ef || du < worst {
                candidates.push(Reverse(Scored(du, u)));
                working.push(Scored(du, u));
                if working.len() > ef {
                    working.pop();
                }
            }
            if accept.accept(u) {
                let worst_a = accepted.peek().map(|s| s.0).unwrap_or(f32::INFINITY);
                if accepted.len() < ef || du < worst_a {
                    accepted.push(Scored(du, u));
                    if accepted.len() > ef {
                        accepted.pop();
                    }
                }
            }
        }
    }
    scratch.frontier = frontier;
    scratch.dists = dists;

    let mut out: Vec<Neighbor> = accepted
        .into_iter()
        .map(|Scored(d, id)| Neighbor { id, dist: d })
        .collect();
    out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    out.truncate(k);
    (out, stats)
}

/// One recorded next-hop decision: the ranked global candidate set `bᵢ`
/// (ascending by estimated distance) at the moment a next hop was selected,
/// and the vertex the estimator-driven search actually expanded.
#[derive(Clone, Debug)]
pub struct Decision {
    /// Ranked candidate ids, best first (at most the beam width `h`).
    pub ranked: Vec<u32>,
    /// The vertex popped as next hop (always a member of `ranked`).
    pub chosen: u32,
}

/// Literal transcription of paper Alg. 2's inner loop: beam search that
/// records, at every next-hop selection, the ranked candidate set the
/// decision was made from. Used offline by the routing-feature extractor, so
/// clarity beats speed (the candidate set is a sorted `Vec`, exactly like
/// the pseudo-code's `sort` + `resize`).
pub fn beam_search_recording(
    graph: &ProximityGraph,
    est: &impl DistanceEstimator,
    h: usize,
    scratch: &mut SearchScratch,
) -> (Vec<Neighbor>, Vec<Decision>) {
    let h = h.max(1);
    scratch.prepare(graph.len());
    let entry = graph.entry();

    // Global candidate set b, ascending by distance. `expanded` marks
    // vertices already used as a next hop; `scratch` marks vertices ever
    // inserted into b (so duplicates are never re-scored).
    let mut b: Vec<Neighbor> = vec![Neighbor {
        id: entry,
        dist: est.distance(entry),
    }];
    scratch.mark(entry);
    let mut expanded: Vec<u32> = Vec::new();
    let mut decisions = Vec::new();

    // v* ← closest vertex in b not yet expanded (Alg. 2 line 6).
    while let Some(pos) = b.iter().position(|n| !expanded.contains(&n.id)) {
        let vstar = b[pos].id;
        decisions.push(Decision {
            ranked: b.iter().map(|n| n.id).collect(),
            chosen: vstar,
        });
        expanded.push(vstar);
        for &u in graph.neighbors(vstar) {
            if !scratch.mark(u) {
                continue;
            }
            b.push(Neighbor {
                id: u,
                dist: est.distance(u),
            });
        }
        b.sort_by(|x, y| x.dist.total_cmp(&y.dist).then(x.id.cmp(&y.id)));
        b.truncate(h);
    }
    (b, decisions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_data::Dataset;

    /// A 1-D line dataset with a bidirectional path graph: routing from
    /// entry 0 must walk monotonically toward the query.
    fn line_world(n: usize) -> (Dataset, ProximityGraph) {
        let mut ds = Dataset::new(1);
        for i in 0..n {
            ds.push(&[i as f32]);
        }
        let adj: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 {
                    v.push((i - 1) as u32);
                }
                if i + 1 < n {
                    v.push((i + 1) as u32);
                }
                v
            })
            .collect();
        (ds, ProximityGraph::from_adjacency(adj, 0))
    }

    #[test]
    fn finds_nearest_on_line() {
        let (ds, g) = line_world(50);
        let q = [37.2f32];
        let est = ExactEstimator::new(&ds, &q);
        let mut scratch = SearchScratch::new();
        let (res, stats) = beam_search(&g, &est, 8, 3, &mut scratch);
        assert_eq!(res[0].id, 37);
        assert_eq!(res[1].id, 38);
        assert_eq!(res[2].id, 36);
        assert!(
            stats.hops >= 37,
            "must walk the line, got {} hops",
            stats.hops
        );
        assert!(stats.dist_comps >= stats.hops);
    }

    #[test]
    fn k_larger_than_ef_is_honoured() {
        let (ds, g) = line_world(20);
        let q = [0.0f32];
        let est = ExactEstimator::new(&ds, &q);
        let mut scratch = SearchScratch::new();
        let (res, _) = beam_search(&g, &est, 1, 5, &mut scratch);
        assert_eq!(res.len(), 5);
    }

    #[test]
    fn results_sorted_ascending() {
        let (ds, g) = line_world(30);
        let q = [14.0f32];
        let est = ExactEstimator::new(&ds, &q);
        let mut scratch = SearchScratch::new();
        let (res, _) = beam_search(&g, &est, 10, 10, &mut scratch);
        for w in res.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn scratch_reuse_across_queries() {
        let (ds, g) = line_world(40);
        let mut scratch = SearchScratch::new();
        for target in [5.0f32, 35.0, 20.0] {
            let q = [target];
            let est = ExactEstimator::new(&ds, &q);
            let (res, _) = beam_search(&g, &est, 8, 1, &mut scratch);
            assert_eq!(res[0].id, target as u32);
        }
    }

    #[test]
    fn presized_scratch_matches_default_scratch() {
        let (ds, g) = line_world(40);
        let q = [23.0f32];
        let est = ExactEstimator::new(&ds, &q);
        let mut fresh = SearchScratch::new();
        let mut sized = SearchScratch::with_capacity(40);
        assert!(sized.memory_bytes() >= 40);
        let (a, _) = beam_search(&g, &est, 8, 3, &mut fresh);
        let (b, _) = beam_search(&g, &est, 8, 3, &mut sized);
        assert_eq!(
            a.iter().map(|n| n.id).collect::<Vec<_>>(),
            b.iter().map(|n| n.id).collect::<Vec<_>>()
        );
        sized.reset();
        let (c, _) = beam_search(&g, &est, 8, 3, &mut sized);
        assert_eq!(
            b.iter().map(|n| n.id).collect::<Vec<_>>(),
            c.iter().map(|n| n.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn filtered_all_accepting_is_bit_identical() {
        let (ds, g) = line_world(60);
        for target in [3.0f32, 41.5, 58.0] {
            let q = [target];
            let est = ExactEstimator::new(&ds, &q);
            let mut s1 = SearchScratch::new();
            let mut s2 = SearchScratch::new();
            let (plain, st1) = beam_search(&g, &est, 8, 5, &mut s1);
            let (filt, st2) = beam_search_filtered(&g, &est, 8, 5, &mut s2, |_| true);
            assert_eq!(st1, st2);
            assert_eq!(
                plain
                    .iter()
                    .map(|n| (n.id, n.dist.to_bits()))
                    .collect::<Vec<_>>(),
                filt.iter()
                    .map(|n| (n.id, n.dist.to_bits()))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn filtered_traverses_rejected_vertices() {
        // Reject the exact nearest vertex: the search must still route
        // *through* it and return its live neighbors instead.
        let (ds, g) = line_world(50);
        let q = [30.0f32];
        let est = ExactEstimator::new(&ds, &q);
        let mut scratch = SearchScratch::new();
        let (res, _) = beam_search_filtered(&g, &est, 8, 3, &mut scratch, |v| v != 30);
        let ids: Vec<u32> = res.iter().map(|n| n.id).collect();
        assert!(!ids.contains(&30), "rejected vertex returned: {ids:?}");
        assert!(
            ids.contains(&29) && ids.contains(&31),
            "search must pass through the rejected vertex to both sides: {ids:?}"
        );
    }

    #[test]
    fn vertex_filter_all_is_bit_identical_to_unfiltered() {
        let (ds, g) = line_world(60);
        for target in [3.0f32, 41.5, 58.0] {
            let q = [target];
            let est = ExactEstimator::new(&ds, &q);
            let mut s1 = SearchScratch::new();
            let mut s2 = SearchScratch::new();
            let (plain, st1) = beam_search(&g, &est, 8, 5, &mut s1);
            assert!(VertexFilter::all().is_all());
            let (filt, st2) = beam_search_filtered(&g, &est, 8, 5, &mut s2, VertexFilter::all());
            assert_eq!(st1, st2);
            assert_eq!(
                plain
                    .iter()
                    .map(|n| (n.id, n.dist.to_bits()))
                    .collect::<Vec<_>>(),
                filt.iter()
                    .map(|n| (n.id, n.dist.to_bits()))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn vertex_filter_tombstones_match_the_hand_rolled_closure() {
        // The refactor's pin: VertexFilter::tombstones must be bit-identical
        // to the `|v| !tombstones[v]` closure the streaming index hand-rolled
        // before tombstones became one instance of the filter layer.
        let (ds, g) = line_world(50);
        let mut tomb = vec![false; 50];
        for v in [28usize, 30, 31, 44] {
            tomb[v] = true;
        }
        for target in [30.0f32, 45.0] {
            let q = [target];
            let est = ExactEstimator::new(&ds, &q);
            let mut s1 = SearchScratch::new();
            let mut s2 = SearchScratch::new();
            let (a, st_a) =
                beam_search_filtered(&g, &est, 8, 5, &mut s1, |v: u32| !tomb[v as usize]);
            let (b, st_b) =
                beam_search_filtered(&g, &est, 8, 5, &mut s2, VertexFilter::tombstones(&tomb));
            assert_eq!(st_a, st_b);
            assert_eq!(
                a.iter()
                    .map(|n| (n.id, n.dist.to_bits()))
                    .collect::<Vec<_>>(),
                b.iter()
                    .map(|n| (n.id, n.dist.to_bits()))
                    .collect::<Vec<_>>()
            );
            assert!(b.iter().all(|n| !tomb[n.id as usize]));
        }
    }

    #[test]
    fn vertex_filter_composes_tombstones_and_predicate() {
        let (ds, g) = line_world(40);
        let mut tomb = vec![false; 40];
        tomb[20] = true;
        let even = |v: u32| v.is_multiple_of(2);
        let q = [20.0f32];
        let est = ExactEstimator::new(&ds, &q);
        let mut scratch = SearchScratch::new();
        let filter = VertexFilter::tombstones(&tomb).and_predicate(&even);
        assert!(!filter.is_all());
        let (res, _) = beam_search_filtered(&g, &est, 10, 5, &mut scratch, filter);
        assert!(!res.is_empty());
        for n in &res {
            assert!(n.id % 2 == 0, "predicate violated: {}", n.id);
            assert!(!tomb[n.id as usize], "tombstone violated: {}", n.id);
        }
        // 20 is the nearest vertex but tombstoned; 22 and 18 are the
        // nearest even live vertices and must both be found through it.
        let ids: Vec<u32> = res.iter().map(|n| n.id).collect();
        assert!(ids.contains(&18) && ids.contains(&22), "{ids:?}");
    }

    #[test]
    fn scratch_survives_index_growth_and_shrink() {
        // Epoch safety (DESIGN.md §8): one scratch, three index sizes.
        let (small_ds, small_g) = line_world(10);
        let (big_ds, big_g) = line_world(80);
        let mut scratch = SearchScratch::with_capacity(10);
        let q = [7.0f32];
        let est_small = ExactEstimator::new(&small_ds, &q);
        let (a, _) = beam_search(&small_g, &est_small, 4, 1, &mut scratch);
        assert_eq!(a[0].id, 7);
        // Grow: the index now has 8x the points the scratch was sized for.
        let q_big = [63.0f32];
        let est_big = ExactEstimator::new(&big_ds, &q_big);
        let (b, _) = beam_search(&big_g, &est_big, 8, 1, &mut scratch);
        assert_eq!(b[0].id, 63);
        // Shrink back below the marks the big search left behind, then
        // reset: stale marks beyond the new length must not panic and the
        // next search must see a clean map.
        scratch.shrink_to(10);
        scratch.reset();
        let (c, _) = beam_search(&small_g, &est_small, 4, 1, &mut scratch);
        assert_eq!(c[0].id, 7);
        let mut fresh = SearchScratch::new();
        let (d, _) = beam_search(&small_g, &est_small, 4, 1, &mut fresh);
        assert_eq!(
            c.iter().map(|n| n.id).collect::<Vec<_>>(),
            d.iter().map(|n| n.id).collect::<Vec<_>>(),
            "reused scratch diverged from a fresh one"
        );
    }

    #[test]
    fn empty_graph_returns_nothing() {
        use crate::dynamic::DynamicGraph;
        let ds = Dataset::new(1);
        let g = DynamicGraph::new();
        let mut scratch = SearchScratch::new();
        let q = [0.0f32];
        let est = ExactEstimator::new(&ds, &q);
        let (res, stats) = beam_search(&g, &est, 4, 2, &mut scratch);
        assert!(res.is_empty());
        assert_eq!(stats.dist_comps, 0);
    }

    #[test]
    fn recording_decisions_contain_chosen() {
        let (ds, g) = line_world(25);
        let q = [19.0f32];
        let est = ExactEstimator::new(&ds, &q);
        let mut scratch = SearchScratch::new();
        let (res, decisions) = beam_search_recording(&g, &est, 4, &mut scratch);
        assert!(!decisions.is_empty());
        for d in &decisions {
            assert!(d.ranked.contains(&d.chosen));
            assert!(d.ranked.len() <= 4);
        }
        assert_eq!(res[0].id, 19);
    }

    #[test]
    fn recording_matches_beam_search_result() {
        let (ds, g) = line_world(30);
        let q = [22.4f32];
        let est = ExactEstimator::new(&ds, &q);
        let mut s1 = SearchScratch::new();
        let mut s2 = SearchScratch::new();
        let (fast, _) = beam_search(&g, &est, 6, 1, &mut s1);
        let (rec, _) = beam_search_recording(&g, &est, 6, &mut s2);
        assert_eq!(fast[0].id, rec[0].id);
    }

    #[test]
    fn disconnected_component_unreachable() {
        let mut ds = Dataset::new(1);
        for i in 0..4 {
            ds.push(&[i as f32]);
        }
        // {0,1} connected, {2,3} separate island; query sits on the island.
        let adj = vec![vec![1], vec![0], vec![3], vec![2]];
        let g = ProximityGraph::from_adjacency(adj, 0);
        let q = [3.0f32];
        let est = ExactEstimator::new(&ds, &q);
        let mut scratch = SearchScratch::new();
        let (res, _) = beam_search(&g, &est, 4, 1, &mut scratch);
        assert_eq!(res[0].id, 1, "search cannot leave the entry component");
    }

    #[test]
    fn frontier_pops_in_distance_then_id_order() {
        let mut f = Frontier::new();
        f.push(2.0, 7);
        f.push(1.0, 9);
        f.push(1.0, 3);
        f.push(0.5, 1);
        assert_eq!(f.len(), 4);
        assert_eq!(f.peek(), Some((0.5, 1)));
        assert_eq!(f.pop(), Some((0.5, 1)));
        // Ties break ascending by id, matching beam_search's heap.
        assert_eq!(f.pop(), Some((1.0, 3)));
        assert_eq!(f.pop(), Some((1.0, 9)));
        assert_eq!(f.pop(), Some((2.0, 7)));
        assert!(f.pop().is_none() && f.is_empty());
    }

    #[test]
    fn pop_frontier_batch_respects_width_and_bound() {
        let mut scratch = SearchScratch::new();
        let mut f = Frontier::new();
        for (d, v) in [(0.1f32, 1u32), (0.2, 2), (0.3, 3), (5.0, 4)] {
            f.push(d, v);
        }
        // Width caps the batch.
        let stage = scratch.pop_frontier_batch(&mut f, 2, f32::INFINITY);
        assert_eq!(stage, vec![(0.1, 1), (0.2, 2)]);
        scratch.recycle_stage(stage);
        // The bound stops mid-batch and leaves the rejected candidate in
        // place.
        let stage = scratch.pop_frontier_batch(&mut f, 8, 1.0);
        assert_eq!(stage, vec![(0.3, 3)]);
        assert_eq!(f.len(), 1);
        scratch.recycle_stage(stage);
        // A tighter bound yields an empty stage — the terminate signal.
        let stage = scratch.pop_frontier_batch(&mut f, 8, 1.0);
        assert!(stage.is_empty());
        scratch.recycle_stage(stage);
        assert_eq!(f.pop(), Some((5.0, 4)));
    }

    #[test]
    fn memo_slot_map_is_epoch_reset() {
        let mut scratch = SearchScratch::new();
        scratch.begin(10);
        assert_eq!(scratch.memo_get(3), None);
        scratch.memo_insert(3, 1.5);
        scratch.memo_insert(7, 2.5);
        scratch.memo_insert(3, 9.5); // overwrite within the epoch
        assert_eq!(scratch.memo_get(3), Some(9.5));
        assert_eq!(scratch.memo_get(7), Some(2.5));
        assert_eq!(scratch.memo_get(4), None);
        // A new epoch forgets everything without reallocating.
        scratch.begin(10);
        assert_eq!(scratch.memo_get(3), None);
        assert_eq!(scratch.memo_get(7), None);
        // Shrinking below memoised ids then resetting must not panic.
        scratch.memo_insert(9, 4.0);
        scratch.shrink_to(5);
        scratch.reset();
        scratch.begin(10);
        assert_eq!(scratch.memo_get(9), None);
    }

    #[test]
    fn visit_matches_private_mark_semantics() {
        let mut scratch = SearchScratch::new();
        scratch.begin(5);
        assert!(scratch.visit(2));
        assert!(!scratch.visit(2));
        assert!(scratch.visit(4));
        scratch.begin(5);
        assert!(scratch.visit(2), "begin must reset visited marks");
    }

    #[test]
    fn single_vertex_graph() {
        let mut ds = Dataset::new(1);
        ds.push(&[0.0]);
        let g = ProximityGraph::from_adjacency(vec![vec![]], 0);
        let q = [1.0f32];
        let est = ExactEstimator::new(&ds, &q);
        let mut scratch = SearchScratch::new();
        let (res, stats) = beam_search(&g, &est, 4, 2, &mut scratch);
        assert_eq!(res.len(), 1);
        assert_eq!(stats.dist_comps, 1);
    }
}
