//! k-NN graph construction: exact brute force (small n) and NN-Descent
//! (Dong et al., WWW'11) for larger sets. NSG consumes these as its
//! initialisation graph.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use rpq_data::Dataset;
use rpq_linalg::distance::sq_l2;

/// Exact k-NN graph by parallel brute force (excluding self edges).
pub fn brute_force_knn_graph(data: &Dataset, k: usize) -> Vec<Vec<u32>> {
    let n = data.len();
    assert!(n > 0, "empty dataset");
    let k = k.min(n.saturating_sub(1));
    (0..n)
        .into_par_iter()
        .map(|i| {
            let mut scored: Vec<(f32, u32)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| (sq_l2(data.get(i), data.get(j)), j as u32))
                .collect();
            scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            scored.truncate(k);
            scored.into_iter().map(|(_, j)| j).collect()
        })
        .collect()
}

/// NN-Descent configuration.
#[derive(Clone, Copy, Debug)]
pub struct NnDescentConfig {
    /// Neighbors per node in the produced graph.
    pub k: usize,
    /// Maximum local-join iterations.
    pub max_iters: usize,
    /// Cap on join candidates per node per iteration.
    pub sample: usize,
    /// Convergence threshold: stop when updates < `delta * n * k`.
    pub delta: f32,
    pub seed: u64,
}

impl Default for NnDescentConfig {
    fn default() -> Self {
        Self {
            k: 24,
            max_iters: 12,
            sample: 40,
            delta: 0.002,
            seed: 0,
        }
    }
}

/// Bounded, sorted neighbor list used during NN-Descent.
struct NeighborList {
    entries: Vec<(f32, u32)>, // ascending by distance
    cap: usize,
}

impl NeighborList {
    fn worst(&self) -> f32 {
        if self.entries.len() < self.cap {
            f32::INFINITY
        } else {
            self.entries.last().map(|e| e.0).unwrap_or(f32::INFINITY)
        }
    }

    /// Inserts if improving; returns true when the list changed.
    fn insert(&mut self, d: f32, id: u32) -> bool {
        if d >= self.worst() || self.entries.iter().any(|e| e.1 == id) {
            return false;
        }
        let pos = self.entries.partition_point(|e| e.0 <= d);
        self.entries.insert(pos, (d, id));
        self.entries.truncate(self.cap);
        true
    }
}

/// Pools per propose/apply round: bounds the proposal buffer (at most
/// `POOL_BATCH · sample²` candidate edges in flight) while leaving plenty
/// of parallelism inside each batch.
const POOL_BATCH: usize = 512;

/// Approximate k-NN graph by NN-Descent local joins.
///
/// Each iteration gathers, for every node, a sampled set of forward and
/// reverse neighbors, then tries every pair inside that set against each
/// other's lists. Converges in a handful of iterations on clustered data.
///
/// The local join runs as parallel **propose** / sequential **apply**
/// batches: workers score candidate pairs against a frozen snapshot of
/// the lists (the expensive distance computations), then the proposals
/// are applied in pool order on one thread. Unlike a locked in-place
/// join, this keeps the result bit-identical for a given seed at every
/// thread count — the determinism contract the whole build pipeline
/// (and `tests/determinism.rs`) relies on.
pub fn nn_descent(data: &Dataset, cfg: NnDescentConfig) -> Vec<Vec<u32>> {
    let n = data.len();
    assert!(n > 0, "empty dataset");
    let k = cfg.k.min(n.saturating_sub(1));
    if k == 0 {
        return vec![Vec::new(); n];
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    // Random initialisation.
    let mut lists: Vec<NeighborList> = (0..n)
        .map(|i| {
            let mut entries = Vec::with_capacity(k);
            let mut chosen = std::collections::HashSet::new();
            while entries.len() < k {
                let j = rng.gen_range(0..n);
                if j != i && chosen.insert(j) {
                    entries.push((sq_l2(data.get(i), data.get(j)), j as u32));
                }
            }
            entries.sort_by(|a, b| a.0.total_cmp(&b.0));
            NeighborList { entries, cap: k }
        })
        .collect();

    for _iter in 0..cfg.max_iters {
        // Candidate pools: forward neighbors + reverse neighbors, capped.
        let mut pools: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, list) in lists.iter().enumerate() {
            for &(_, j) in &list.entries {
                pools[i].push(j);
                pools[j as usize].push(i as u32);
            }
        }
        for pool in &mut pools {
            pool.sort_unstable();
            pool.dedup();
            if pool.len() > cfg.sample {
                // Deterministic thinning keeps the pass reproducible.
                let stride = pool.len() as f32 / cfg.sample as f32;
                let thinned: Vec<u32> = (0..cfg.sample)
                    .map(|t| pool[(t as f32 * stride) as usize])
                    .collect();
                *pool = thinned;
            }
        }

        // Local join: every pair inside a pool proposes each other.
        let mut updates = 0usize;
        for batch in pools.chunks(POOL_BATCH) {
            // Propose (parallel, read-only): score pairs against the list
            // state as of the batch start. The snapshot `worst()` filter
            // only prunes; apply re-checks every proposal.
            let proposals: Vec<Vec<(u32, f32, u32)>> = batch
                .par_iter()
                .map(|pool| {
                    let mut local = Vec::new();
                    for ai in 0..pool.len() {
                        for bi in (ai + 1)..pool.len() {
                            let (a, b) = (pool[ai], pool[bi]);
                            if a == b {
                                continue;
                            }
                            let d = sq_l2(data.get(a as usize), data.get(b as usize));
                            if d < lists[a as usize].worst() {
                                local.push((a, d, b));
                            }
                            if d < lists[b as usize].worst() {
                                local.push((b, d, a));
                            }
                        }
                    }
                    local
                })
                .collect();
            // Apply (sequential, in pool order): deterministic inserts.
            for (target, d, id) in proposals.into_iter().flatten() {
                if lists[target as usize].insert(d, id) {
                    updates += 1;
                }
            }
        }

        if (updates as f32) < cfg.delta * (n * k) as f32 {
            break;
        }
    }

    lists
        .into_iter()
        .map(|l| l.entries.into_iter().map(|(_, j)| j).collect())
        .collect()
}

/// Recall of an approximate k-NN graph against the exact one (diagnostic
/// used by tests and DESIGN.md ablations).
pub fn knn_graph_recall(approx: &[Vec<u32>], exact: &[Vec<u32>]) -> f32 {
    assert_eq!(approx.len(), exact.len());
    let mut hit = 0usize;
    let mut total = 0usize;
    for (a, e) in approx.iter().zip(exact) {
        total += e.len();
        hit += e.iter().filter(|id| a.contains(id)).count();
    }
    if total == 0 {
        1.0
    } else {
        hit as f32 / total as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_data::synth::{SynthConfig, ValueTransform};

    fn toy_data(n: usize, seed: u64) -> Dataset {
        SynthConfig {
            dim: 12,
            intrinsic_dim: 4,
            clusters: 6,
            cluster_std: 0.6,
            noise_std: 0.02,
            transform: ValueTransform::Identity,
        }
        .generate(n, seed)
    }

    #[test]
    fn brute_force_graph_is_exact() {
        let data = toy_data(60, 1);
        let g = brute_force_knn_graph(&data, 5);
        assert_eq!(g.len(), 60);
        for (i, nbrs) in g.iter().enumerate() {
            assert_eq!(nbrs.len(), 5);
            assert!(!nbrs.contains(&(i as u32)), "self edge at {i}");
            // First neighbor really is the closest other point.
            let mut best = (f32::INFINITY, 0u32);
            for j in 0..60 {
                if j != i {
                    let d = sq_l2(data.get(i), data.get(j));
                    if d < best.0 {
                        best = (d, j as u32);
                    }
                }
            }
            assert_eq!(nbrs[0], best.1, "node {i}");
        }
    }

    #[test]
    fn brute_force_k_clamped() {
        let data = toy_data(4, 2);
        let g = brute_force_knn_graph(&data, 100);
        assert!(g.iter().all(|l| l.len() == 3));
    }

    #[test]
    fn nn_descent_recovers_most_true_neighbors() {
        let data = toy_data(600, 3);
        let exact = brute_force_knn_graph(&data, 10);
        let approx = nn_descent(
            &data,
            NnDescentConfig {
                k: 10,
                ..Default::default()
            },
        );
        let recall = knn_graph_recall(&approx, &exact);
        assert!(recall > 0.85, "nn-descent recall too low: {recall}");
    }

    #[test]
    fn nn_descent_no_self_edges_and_bounded() {
        let data = toy_data(120, 4);
        let g = nn_descent(
            &data,
            NnDescentConfig {
                k: 8,
                ..Default::default()
            },
        );
        for (i, l) in g.iter().enumerate() {
            assert!(l.len() <= 8);
            assert!(!l.contains(&(i as u32)));
            let mut dd = l.clone();
            dd.sort_unstable();
            dd.dedup();
            assert_eq!(dd.len(), l.len(), "duplicates at node {i}");
        }
    }

    #[test]
    fn nn_descent_tiny_dataset() {
        let data = toy_data(3, 5);
        let g = nn_descent(
            &data,
            NnDescentConfig {
                k: 8,
                ..Default::default()
            },
        );
        assert!(g.iter().all(|l| l.len() == 2));
    }
}
