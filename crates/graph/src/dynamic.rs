//! Mutable adjacency-list graph for the streaming index (DESIGN.md §8).
//!
//! [`ProximityGraph`] is a frozen CSR — cheap to route over, impossible to
//! patch. `DynamicGraph` is the editable counterpart: plain adjacency lists
//! plus an entry vertex, implementing [`GraphView`] so [`crate::beam_search`]
//! routes over it unchanged. The Vamana incremental operations
//! ([`crate::VamanaConfig::insert_point`] and friends) mutate it in place;
//! [`DynamicGraph::freeze`] converts back to CSR when churn stops.

use crate::pg::{GraphView, ProximityGraph};

/// An editable proximity graph: per-vertex neighbor lists and an entry
/// vertex. Unlike [`ProximityGraph`] it may be empty (a streaming index
/// starts with no points), in which case the entry is meaningless until the
/// first vertex arrives.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DynamicGraph {
    adj: Vec<Vec<u32>>,
    entry: u32,
}

impl DynamicGraph {
    /// An empty graph; [`DynamicGraph::push_vertex`] grows it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Thaws a frozen graph into editable adjacency lists.
    pub fn from_graph(g: &ProximityGraph) -> Self {
        let adj = (0..g.len() as u32)
            .map(|v| g.neighbors(v).to_vec())
            .collect();
        Self {
            adj,
            entry: g.entry(),
        }
    }

    /// Wraps existing adjacency lists. Panics on out-of-range neighbors or
    /// entry (mirrors [`ProximityGraph::from_adjacency`], minus the
    /// no-empty-graph restriction).
    pub fn from_adjacency(adj: Vec<Vec<u32>>, entry: u32) -> Self {
        let n = adj.len();
        assert!(
            n == 0 || (entry as usize) < n,
            "entry {entry} out of range ({n} vertices)"
        );
        for (v, list) in adj.iter().enumerate() {
            for &u in list {
                assert!((u as usize) < n, "neighbor {u} of {v} out of range");
            }
        }
        Self { adj, entry }
    }

    /// Freezes into CSR for the read-only serving paths. Panics when empty
    /// (a CSR graph must have at least one vertex).
    pub fn freeze(&self) -> ProximityGraph {
        ProximityGraph::from_adjacency(self.adj.clone(), self.entry)
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True when there are no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// The entry vertex routing starts from.
    #[inline]
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Re-designates the entry vertex (consolidation re-centres it on the
    /// medoid of the survivors).
    pub fn set_entry(&mut self, entry: u32) {
        assert!((entry as usize) < self.adj.len(), "entry out of range");
        self.entry = entry;
    }

    /// Out-neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }

    /// Appends a vertex with the given out-neighbors and returns its id.
    pub fn push_vertex(&mut self, neighbors: Vec<u32>) -> u32 {
        let id = self.adj.len() as u32;
        for &u in &neighbors {
            assert!(u < id, "neighbor {u} of new vertex {id} out of range");
        }
        self.adj.push(neighbors);
        id
    }

    /// Replaces the out-neighbor list of `v`.
    pub fn set_neighbors(&mut self, v: u32, neighbors: Vec<u32>) {
        let n = self.adj.len();
        for &u in &neighbors {
            assert!((u as usize) < n && u != v, "bad neighbor {u} for {v}");
        }
        self.adj[v as usize] = neighbors;
    }

    /// Total number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Vec<u32>>() * self.adj.capacity()
            + self.adj.iter().map(|l| l.capacity() * 4).sum::<usize>()
    }

    /// Number of vertices reachable from the entry (connectivity
    /// diagnostic, same contract as [`ProximityGraph::reachable_from_entry`]).
    pub fn reachable_from_entry(&self) -> usize {
        if self.is_empty() {
            return 0;
        }
        let mut seen = vec![false; self.len()];
        let mut stack = vec![self.entry];
        seen[self.entry as usize] = true;
        let mut count = 0;
        while let Some(v) = stack.pop() {
            count += 1;
            for &u in &self.adj[v as usize] {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    stack.push(u);
                }
            }
        }
        count
    }

    /// The raw adjacency lists, for the crate-internal Vamana patch
    /// operations (which share `robust_prune`/`search_adj` with the batch
    /// builder).
    pub(crate) fn adj(&self) -> &[Vec<u32>] {
        &self.adj
    }

    pub(crate) fn adj_mut(&mut self) -> &mut Vec<Vec<u32>> {
        &mut self.adj
    }
}

impl GraphView for DynamicGraph {
    fn len(&self) -> usize {
        DynamicGraph::len(self)
    }

    fn entry(&self) -> u32 {
        DynamicGraph::entry(self)
    }

    fn neighbors(&self, v: u32) -> &[u32] {
        DynamicGraph::neighbors(self, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thaw_freeze_roundtrip() {
        let adj = vec![vec![1, 2], vec![0], vec![0, 1]];
        let g = ProximityGraph::from_adjacency(adj, 2);
        let dynamic = DynamicGraph::from_graph(&g);
        assert_eq!(dynamic.len(), 3);
        assert_eq!(dynamic.entry(), 2);
        assert_eq!(dynamic.neighbors(0), &[1, 2]);
        assert_eq!(dynamic.freeze(), g);
    }

    #[test]
    fn push_and_rewire() {
        let mut g = DynamicGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.push_vertex(vec![]), 0);
        assert_eq!(g.push_vertex(vec![0]), 1);
        assert_eq!(g.push_vertex(vec![0, 1]), 2);
        g.set_neighbors(0, vec![2]);
        g.set_entry(1);
        assert_eq!(g.neighbors(0), &[2]);
        assert_eq!(g.entry(), 1);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.reachable_from_entry(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_vertex_rejects_forward_edge() {
        let mut g = DynamicGraph::new();
        g.push_vertex(vec![1]);
    }

    #[test]
    #[should_panic(expected = "bad neighbor")]
    fn set_neighbors_rejects_self_loop() {
        let mut g = DynamicGraph::from_adjacency(vec![vec![], vec![0]], 0);
        g.set_neighbors(1, vec![1]);
    }
}
