//! HNSW construction (Malkov & Yashunin, TPAMI'18), flattened to its base
//! layer for the common [`ProximityGraph`] abstraction (see crate docs).
//!
//! The insert procedure is the standard one: sample a level from a
//! geometric distribution, greedily descend the upper layers, then at each
//! level ≤ the node's level run an `ef_construction` search and select
//! `M` neighbors with the *heuristic* selection rule (keep a candidate only
//! if it is closer to the new node than to every already-selected
//! neighbor), linking bidirectionally with degree capping.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rpq_data::Dataset;
use rpq_linalg::distance::sq_l2;

use crate::construction::{search_adj, Scored};
use crate::pg::ProximityGraph;

/// HNSW build parameters.
#[derive(Clone, Copy, Debug)]
pub struct HnswConfig {
    /// Target degree M (upper layers); the base layer allows 2M.
    pub m: usize,
    /// Construction beam width.
    pub ef_construction: usize,
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        Self {
            m: 16,
            ef_construction: 100,
            seed: 0,
        }
    }
}

impl HnswConfig {
    /// Builds the layered graph and returns its base layer, with the global
    /// entry point as the PG entry vertex.
    pub fn build(&self, data: &Dataset) -> ProximityGraph {
        let n = data.len();
        assert!(n > 0, "cannot build a graph over an empty dataset");
        let m = self.m.max(2);
        let m0 = 2 * m;
        let ml = 1.0 / (m as f64).ln();
        let mut rng = SmallRng::seed_from_u64(self.seed);

        // layers[l] is an adjacency list over all node ids (empty for nodes
        // absent from that layer). Level 0 always contains everyone.
        let mut layers: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); n]];
        let mut levels: Vec<usize> = Vec::with_capacity(n);
        let mut entry: u32 = 0;
        let mut top_level: usize = 0;

        let mut visited = Vec::new();
        let mut touched = Vec::new();

        for i in 0..n as u32 {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let level = ((-u.ln() * ml) as usize).min(32);
            levels.push(level);
            while layers.len() <= level {
                layers.push(vec![Vec::new(); n]);
            }
            if i == 0 {
                entry = 0;
                top_level = level;
                continue;
            }

            let q = data.get(i as usize);
            let mut ep = entry;
            // Greedy descent through layers above the node's level.
            let start = top_level.min(layers.len() - 1);
            for l in ((level + 1)..=start).rev() {
                ep = greedy_closest(&layers[l], data, q, ep);
            }
            // Insert into each layer from min(level, top) down to 0.
            for l in (0..=level.min(top_level)).rev() {
                let (results, _) = search_adj(
                    &layers[l],
                    data,
                    q,
                    ep,
                    self.ef_construction,
                    &mut visited,
                    &mut touched,
                );
                let cap = if l == 0 { m0 } else { m };
                let selected = select_heuristic(&results, data, m);
                for &s in &selected {
                    layers[l][i as usize].push(s);
                    let list = &mut layers[l][s as usize];
                    list.push(i);
                    if list.len() > cap {
                        let sc: Vec<Scored> = list
                            .iter()
                            .map(|&u2| (sq_l2(data.get(s as usize), data.get(u2 as usize)), u2))
                            .collect();
                        let mut sorted = sc;
                        sorted.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                        *layers[l].get_mut(s as usize).unwrap() =
                            select_heuristic(&sorted, data, cap);
                    }
                }
                if let Some(&(_, best)) = results.first() {
                    ep = best;
                }
            }
            if level > top_level {
                top_level = level;
                entry = i;
            }
        }

        ProximityGraph::from_adjacency(layers.swap_remove(0), entry)
    }
}

/// Greedy 1-NN walk within one layer (used for the upper-layer descent).
fn greedy_closest(layer: &[Vec<u32>], data: &Dataset, q: &[f32], mut cur: u32) -> u32 {
    let mut cur_d = sq_l2(q, data.get(cur as usize));
    loop {
        let mut improved = false;
        for &u in &layer[cur as usize] {
            let d = sq_l2(q, data.get(u as usize));
            if d < cur_d {
                cur_d = d;
                cur = u;
                improved = true;
            }
        }
        if !improved {
            return cur;
        }
    }
}

/// Malkov's heuristic neighbor selection: scan candidates ascending by
/// distance, keep one only if it is closer to the query node than to every
/// neighbor already kept (encourages direction diversity).
fn select_heuristic(candidates: &[Scored], data: &Dataset, m: usize) -> Vec<u32> {
    let mut selected: Vec<u32> = Vec::with_capacity(m);
    for &(d_q, c) in candidates {
        if selected.len() >= m {
            break;
        }
        let cv = data.get(c as usize);
        let ok = selected
            .iter()
            .all(|&s| sq_l2(cv, data.get(s as usize)) >= d_q);
        if ok {
            selected.push(c);
        }
    }
    // Fallback: if the diversity rule starved us, top up with the closest
    // remaining candidates (standard keepPruned extension).
    if selected.len() < m {
        for &(_, c) in candidates {
            if selected.len() >= m {
                break;
            }
            if !selected.contains(&c) {
                selected.push(c);
            }
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beam::{beam_search, ExactEstimator, SearchScratch};
    use rpq_data::ground_truth::brute_force_knn;
    use rpq_data::synth::{SynthConfig, ValueTransform};

    fn toy(n: usize, seed: u64) -> Dataset {
        SynthConfig {
            dim: 16,
            intrinsic_dim: 6,
            clusters: 8,
            cluster_std: 0.7,
            noise_std: 0.03,
            transform: ValueTransform::Identity,
        }
        .generate(n, seed)
    }

    #[test]
    fn base_layer_degrees_bounded() {
        let data = toy(300, 1);
        let g = HnswConfig {
            m: 8,
            ef_construction: 40,
            seed: 0,
        }
        .build(&data);
        assert!(g.max_degree() <= 16, "max degree {}", g.max_degree());
    }

    #[test]
    fn hnsw_is_navigable() {
        let data = toy(500, 2);
        let g = HnswConfig::default().build(&data);
        let (_, queries) = data.split_at(480);
        let gt = brute_force_knn(&data, &queries, 10);
        let mut scratch = SearchScratch::new();
        let mut results = Vec::new();
        for q in queries.iter() {
            let est = ExactEstimator::new(&data, q);
            let (res, _) = beam_search(&g, &est, 50, 10, &mut scratch);
            results.push(res.iter().map(|n| n.id).collect::<Vec<_>>());
        }
        let recall = gt.recall(&results);
        assert!(recall > 0.9, "hnsw recall too low: {recall}");
    }

    #[test]
    fn connectivity_near_total() {
        let data = toy(400, 3);
        let g = HnswConfig::default().build(&data);
        assert!(g.reachable_from_entry() as f32 > 0.99 * 400.0);
    }

    #[test]
    fn handles_tiny_datasets() {
        for n in [1usize, 2, 3, 5] {
            let data = toy(n, 10 + n as u64);
            let g = HnswConfig::default().build(&data);
            assert_eq!(g.len(), n);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = toy(150, 4);
        let a = HnswConfig {
            seed: 5,
            ..Default::default()
        }
        .build(&data);
        let b = HnswConfig {
            seed: 5,
            ..Default::default()
        }
        .build(&data);
        assert_eq!(a, b);
    }
}
