//! Shared helpers for graph builders: greedy beam search over a mutable
//! adjacency-list graph, medoid selection, and DiskANN's RobustPrune.

use rpq_data::Dataset;
use rpq_linalg::distance::sq_l2;

/// A `(distance, id)` pair ascending-ordered by distance.
pub(crate) type Scored = (f32, u32);

/// Greedy beam search over adjacency lists with exact distances.
///
/// Returns `(results, expanded)`: the best `l` vertices found (ascending)
/// and every vertex that was expanded, with distances — the candidate set
/// DiskANN's RobustPrune consumes.
pub(crate) fn search_adj(
    adj: &[Vec<u32>],
    data: &Dataset,
    query: &[f32],
    entry: u32,
    l: usize,
    visited: &mut Vec<bool>,
    touched: &mut Vec<u32>,
) -> (Vec<Scored>, Vec<Scored>) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let l = l.max(1);
    if visited.len() < adj.len() {
        visited.resize(adj.len(), false);
    }
    for &t in touched.iter() {
        visited[t as usize] = false;
    }
    touched.clear();

    #[derive(PartialEq)]
    struct S(f32, u32);
    impl Eq for S {}
    impl PartialOrd for S {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    impl Ord for S {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&o.0).then(self.1.cmp(&o.1))
        }
    }

    let d0 = sq_l2(query, data.get(entry as usize));
    visited[entry as usize] = true;
    touched.push(entry);
    let mut frontier: BinaryHeap<Reverse<S>> = BinaryHeap::new();
    let mut pool: BinaryHeap<S> = BinaryHeap::with_capacity(l + 1);
    frontier.push(Reverse(S(d0, entry)));
    pool.push(S(d0, entry));
    let mut expanded: Vec<Scored> = Vec::new();

    while let Some(Reverse(S(d, v))) = frontier.pop() {
        let worst = pool.peek().map(|s| s.0).unwrap_or(f32::INFINITY);
        if pool.len() == l && d > worst {
            break;
        }
        expanded.push((d, v));
        for &u in &adj[v as usize] {
            if visited[u as usize] {
                continue;
            }
            visited[u as usize] = true;
            touched.push(u);
            let du = sq_l2(query, data.get(u as usize));
            let worst = pool.peek().map(|s| s.0).unwrap_or(f32::INFINITY);
            if pool.len() < l || du < worst {
                frontier.push(Reverse(S(du, u)));
                pool.push(S(du, u));
                if pool.len() > l {
                    pool.pop();
                }
            }
        }
    }

    let mut results: Vec<Scored> = pool.into_iter().map(|S(d, v)| (d, v)).collect();
    results.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    (results, expanded)
}

/// Index of the vector closest to the dataset mean (the medoid both Vamana
/// and NSG use as their fixed entry vertex).
pub(crate) fn medoid(data: &Dataset) -> u32 {
    let n = data.len();
    assert!(n > 0, "medoid of an empty dataset");
    let d = data.dim();
    let mut mean = vec![0.0f64; d];
    for v in data.iter() {
        for (m, &x) in mean.iter_mut().zip(v) {
            *m += x as f64;
        }
    }
    let mean: Vec<f32> = mean.iter().map(|&m| (m / n as f64) as f32).collect();
    let mut best = (f32::INFINITY, 0u32);
    for (i, v) in data.iter().enumerate() {
        let dist = sq_l2(&mean, v);
        if dist < best.0 {
            best = (dist, i as u32);
        }
    }
    best.1
}

/// Medoid restricted to a subset: the member of `ids` closest to the mean
/// of the vectors in `ids`. Consolidation re-centres the entry vertex on the
/// survivors with this (DESIGN.md §8.3).
pub(crate) fn medoid_subset(data: &Dataset, ids: &[u32]) -> u32 {
    assert!(!ids.is_empty(), "medoid of an empty subset");
    let d = data.dim();
    let mut mean = vec![0.0f64; d];
    for &i in ids {
        for (m, &x) in mean.iter_mut().zip(data.get(i as usize)) {
            *m += x as f64;
        }
    }
    let mean: Vec<f32> = mean
        .iter()
        .map(|&m| (m / ids.len() as f64) as f32)
        .collect();
    let mut best = (f32::INFINITY, ids[0]);
    for &i in ids {
        let dist = sq_l2(&mean, data.get(i as usize));
        if dist < best.0 {
            best = (dist, i);
        }
    }
    best.1
}

/// Makes every vertex reachable from `entry`: repeatedly BFS, then attach
/// each unreachable vertex from its nearest reachable candidate in `knn`
/// (or directly from the entry as a last resort). Attach points with spare
/// capacity (< r + 2 edges) are preferred so repair edges spread out instead
/// of piling onto one boundary hub and blowing the degree bound. Shared by
/// the NSG builder and the streaming consolidation pass (DESIGN.md §8.3).
pub(crate) fn repair_connectivity(
    adj: &mut [Vec<u32>],
    data: &Dataset,
    knn: &[Vec<u32>],
    entry: u32,
    r: usize,
) {
    let n = adj.len();
    let cap = r + 2;
    loop {
        let mut seen = vec![false; n];
        let mut stack = vec![entry];
        seen[entry as usize] = true;
        while let Some(v) = stack.pop() {
            for &u in &adj[v as usize] {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    stack.push(u);
                }
            }
        }
        let unreachable: Vec<u32> = (0..n as u32).filter(|&v| !seen[v as usize]).collect();
        if unreachable.is_empty() {
            return;
        }
        let mut progressed = false;
        for &u in &unreachable {
            // Nearest reachable vertex among u's kNN, preferring vertices
            // that still have repair capacity.
            let mut best: Option<(f32, u32)> = None;
            let mut best_full: Option<(f32, u32)> = None;
            for &c in &knn[u as usize] {
                if seen[c as usize] {
                    let d = sq_l2(data.get(u as usize), data.get(c as usize));
                    let slot = if adj[c as usize].len() < cap {
                        &mut best
                    } else {
                        &mut best_full
                    };
                    if slot.map(|(bd, _)| d < bd).unwrap_or(true) {
                        *slot = Some((d, c));
                    }
                }
            }
            if let Some((_, c)) = best.or(best_full) {
                if !adj[c as usize].contains(&u) {
                    adj[c as usize].push(u);
                    // Mark immediately so later repairs in this pass can
                    // chain through `u` instead of all funnelling into the
                    // same boundary vertices.
                    seen[u as usize] = true;
                    progressed = true;
                }
            }
        }
        if !progressed {
            // Last resort: wire the first unreachable vertex from the entry.
            let u = unreachable[0];
            if !adj[entry as usize].contains(&u) {
                adj[entry as usize].push(u);
            } else {
                return; // cannot make progress; avoid an infinite loop
            }
        }
    }
}

/// DiskANN's RobustPrune (Jayaram Subramanya et al., NeurIPS'19): greedily
/// keeps the closest candidate and discards every other candidate `v` that
/// is `alpha`-dominated by it (`alpha · δ(p*, v) ≤ δ(p, v)`), until `r`
/// neighbors are selected.
///
/// `candidates` are `(distance to p, id)` pairs; `p` itself and duplicates
/// are removed here.
pub(crate) fn robust_prune(
    p: u32,
    mut candidates: Vec<Scored>,
    data: &Dataset,
    alpha: f32,
    r: usize,
) -> Vec<u32> {
    candidates.retain(|&(_, v)| v != p);
    candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    candidates.dedup_by_key(|&mut (_, v)| v);
    let mut selected: Vec<u32> = Vec::with_capacity(r);
    while let Some(&(_, pstar)) = candidates.first() {
        selected.push(pstar);
        if selected.len() >= r {
            break;
        }
        let pstar_vec = data.get(pstar as usize);
        candidates.retain(|&(d_pv, v)| {
            if v == pstar {
                return false;
            }
            let d_cv = sq_l2(pstar_vec, data.get(v as usize));
            alpha * d_cv > d_pv
        });
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> Dataset {
        let mut d = Dataset::new(1);
        for i in 0..n {
            d.push(&[i as f32]);
        }
        d
    }

    #[test]
    fn medoid_of_line_is_middle() {
        let d = line(9);
        assert_eq!(medoid(&d), 4);
    }

    #[test]
    fn search_adj_walks_path() {
        let d = line(20);
        let adj: Vec<Vec<u32>> = (0..20)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 {
                    v.push((i - 1) as u32);
                }
                if i + 1 < 20 {
                    v.push((i + 1) as u32);
                }
                v
            })
            .collect();
        let mut visited = Vec::new();
        let mut touched = Vec::new();
        let (res, expanded) = search_adj(&adj, &d, &[13.2], 0, 4, &mut visited, &mut touched);
        assert_eq!(res[0].1, 13);
        assert!(expanded.len() >= 13);
    }

    #[test]
    fn robust_prune_respects_degree_and_diversity() {
        // Near-duplicates at 1.0/1.1/1.2 on one side and a point at -50 on
        // the other: pruning with alpha=1 from p=0 keeps the nearest and the
        // opposite-direction point, drops the dominated near-duplicates
        // (they are closer to the kept neighbor than to p).
        let mut data = Dataset::new(1);
        for x in [0.0f32, 1.0, 1.1, 1.2, -50.0] {
            data.push(&[x]);
        }
        let cands: Vec<Scored> = (1..5u32)
            .map(|v| (sq_l2(data.get(0), data.get(v as usize)), v))
            .collect();
        let sel = robust_prune(0, cands, &data, 1.0, 4);
        assert!(sel.contains(&1), "closest kept");
        assert!(sel.contains(&4), "opposite-direction point kept: {sel:?}");
        assert!(
            !sel.contains(&2) && !sel.contains(&3),
            "dominated dropped: {sel:?}"
        );
    }

    #[test]
    fn robust_prune_removes_self_and_caps() {
        let mut data = Dataset::new(1);
        for x in 0..10 {
            data.push(&[x as f32]);
        }
        let cands: Vec<Scored> = (0..10u32).map(|v| (v as f32 * v as f32, v)).collect();
        let sel = robust_prune(0, cands, &data, 2.0, 3);
        assert!(sel.len() <= 3);
        assert!(!sel.contains(&0));
    }
}
