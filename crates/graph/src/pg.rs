//! The frozen proximity-graph representation shared by all builders.

use std::io::{self, Read, Write};

/// The read surface beam search routes over: any adjacency structure with a
/// designated entry vertex. Implemented by the frozen CSR
/// [`ProximityGraph`] and by the mutable [`crate::DynamicGraph`] the
/// streaming index patches in place (DESIGN.md §8), so one search routine
/// serves both the build-once and the live-corpus paths.
pub trait GraphView {
    /// Number of vertices.
    fn len(&self) -> usize;

    /// True when there are no vertices.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The entry vertex routing starts from.
    fn entry(&self) -> u32;

    /// Out-neighbors of `v`.
    fn neighbors(&self, v: u32) -> &[u32];
}

impl GraphView for ProximityGraph {
    fn len(&self) -> usize {
        ProximityGraph::len(self)
    }

    fn entry(&self) -> u32 {
        ProximityGraph::entry(self)
    }

    fn neighbors(&self, v: u32) -> &[u32] {
        ProximityGraph::neighbors(self, v)
    }
}

/// A proximity graph (paper Def. 2): one vertex per dataset vector, CSR
/// adjacency, and a designated entry vertex for routing.
#[derive(Clone, Debug, PartialEq)]
pub struct ProximityGraph {
    offsets: Vec<u64>,
    neighbors: Vec<u32>,
    entry: u32,
}

impl ProximityGraph {
    /// Freezes an adjacency-list representation into CSR. Panics if any
    /// neighbor id is out of range or `entry` is not a vertex.
    pub fn from_adjacency(adj: Vec<Vec<u32>>, entry: u32) -> Self {
        let n = adj.len();
        assert!(n > 0, "graph must have at least one vertex");
        assert!(
            (entry as usize) < n,
            "entry {entry} out of range ({n} vertices)"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let total: usize = adj.iter().map(Vec::len).sum();
        let mut neighbors = Vec::with_capacity(total);
        for (v, list) in adj.iter().enumerate() {
            for &u in list {
                assert!((u as usize) < n, "neighbor {u} of {v} out of range");
                debug_assert!(u as usize != v, "self loop at {v}");
                neighbors.push(u);
            }
            offsets.push(neighbors.len() as u64);
        }
        Self {
            offsets,
            neighbors,
            entry,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when there are no vertices (never constructible; kept for API
    /// symmetry).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The entry vertex routing starts from.
    #[inline]
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Out-neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let v = v as usize;
        debug_assert!(v < self.len());
        &self.neighbors[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Total number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.neighbors.len()
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f32 {
        self.edge_count() as f32 / self.len() as f32
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> usize {
        (0..self.len())
            .map(|v| self.neighbors(v as u32).len())
            .max()
            .unwrap_or(0)
    }

    /// Approximate in-memory footprint in bytes (what the in-memory
    /// scenario's budget accounting charges for the graph).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * 8 + self.neighbors.len() * 4
    }

    /// Collects the n-hop neighborhood `N_n(v)` of `v` — Alg. 1 lines 2-10
    /// of the paper: `n` rounds of propagation from `v`'s direct neighbors,
    /// excluding `v` itself, without duplicates.
    pub fn n_hop_neighborhood(&self, v: u32, n_hops: usize) -> Vec<u32> {
        let mut seen = vec![false; self.len()];
        seen[v as usize] = true;
        let mut result: Vec<u32> = Vec::new();
        let mut frontier: Vec<u32> = self.neighbors(v).to_vec();
        for hop in 0..n_hops {
            let mut next = Vec::new();
            for &u in &frontier {
                if seen[u as usize] {
                    continue;
                }
                seen[u as usize] = true;
                result.push(u);
                if hop + 1 < n_hops {
                    next.extend_from_slice(self.neighbors(u));
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        result
    }

    /// Number of vertices reachable from the entry (a connectivity
    /// diagnostic; NSG's repair step guarantees this equals `len()`).
    pub fn reachable_from_entry(&self) -> usize {
        let mut seen = vec![false; self.len()];
        let mut stack = vec![self.entry];
        seen[self.entry as usize] = true;
        let mut count = 0;
        while let Some(v) = stack.pop() {
            count += 1;
            for &u in self.neighbors(v) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    stack.push(u);
                }
            }
        }
        count
    }

    /// Serialises to a simple length-prefixed little-endian binary format.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(b"RPQG")?;
        w.write_all(&(self.len() as u64).to_le_bytes())?;
        w.write_all(&(self.neighbors.len() as u64).to_le_bytes())?;
        w.write_all(&self.entry.to_le_bytes())?;
        for &o in &self.offsets {
            w.write_all(&o.to_le_bytes())?;
        }
        for &nb in &self.neighbors {
            w.write_all(&nb.to_le_bytes())?;
        }
        Ok(())
    }

    /// Deserialises the format written by [`ProximityGraph::write_to`].
    pub fn read_from(r: &mut impl Read) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != b"RPQG" {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
        }
        let mut b8 = [0u8; 8];
        r.read_exact(&mut b8)?;
        let n = u64::from_le_bytes(b8) as usize;
        r.read_exact(&mut b8)?;
        let e = u64::from_le_bytes(b8) as usize;
        let mut b4 = [0u8; 4];
        r.read_exact(&mut b4)?;
        let entry = u32::from_le_bytes(b4);
        if n == 0 || entry as usize >= n {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad header"));
        }
        let mut offsets = Vec::with_capacity(n + 1);
        for _ in 0..=n {
            r.read_exact(&mut b8)?;
            offsets.push(u64::from_le_bytes(b8));
        }
        if offsets[0] != 0 || offsets[n] as usize != e || offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad offsets"));
        }
        let mut neighbors = Vec::with_capacity(e);
        for _ in 0..e {
            r.read_exact(&mut b4)?;
            let nb = u32::from_le_bytes(b4);
            if nb as usize >= n {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "neighbor out of range",
                ));
            }
            neighbors.push(nb);
        }
        Ok(Self {
            offsets,
            neighbors,
            entry,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> ProximityGraph {
        // 0 - 1 - 2 - ... - (n-1), bidirectional
        let adj: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 {
                    v.push((i - 1) as u32);
                }
                if i + 1 < n {
                    v.push((i + 1) as u32);
                }
                v
            })
            .collect();
        ProximityGraph::from_adjacency(adj, 0)
    }

    #[test]
    fn csr_basics() {
        let g = path_graph(4);
        assert_eq!(g.len(), 4);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn n_hop_neighborhood_expands() {
        let g = path_graph(7);
        let h1 = g.n_hop_neighborhood(3, 1);
        assert_eq!(sorted(h1), vec![2, 4]);
        let h2 = g.n_hop_neighborhood(3, 2);
        assert_eq!(sorted(h2), vec![1, 2, 4, 5]);
        let h10 = g.n_hop_neighborhood(3, 10);
        assert_eq!(sorted(h10), vec![0, 1, 2, 4, 5, 6]);
    }

    #[test]
    fn n_hop_excludes_self() {
        let g = path_graph(3);
        assert!(!g.n_hop_neighborhood(1, 5).contains(&1));
    }

    #[test]
    fn reachability() {
        let g = path_graph(5);
        assert_eq!(g.reachable_from_entry(), 5);
        // Disconnected: vertex 2 isolated.
        let adj = vec![vec![1], vec![0], vec![]];
        let g2 = ProximityGraph::from_adjacency(adj, 0);
        assert_eq!(g2.reachable_from_entry(), 2);
    }

    #[test]
    fn serialization_roundtrip() {
        let g = path_graph(6);
        let mut buf = Vec::new();
        g.write_to(&mut buf).unwrap();
        let back = ProximityGraph::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn deserialize_rejects_garbage() {
        assert!(ProximityGraph::read_from(&mut &b"NOPE"[..]).is_err());
        let g = path_graph(3);
        let mut buf = Vec::new();
        g.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(ProximityGraph::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    #[should_panic(expected = "entry 9 out of range")]
    fn bad_entry_panics() {
        let _ = ProximityGraph::from_adjacency(vec![vec![]], 9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_neighbor_panics() {
        let _ = ProximityGraph::from_adjacency(vec![vec![5]], 0);
    }

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v
    }
}
