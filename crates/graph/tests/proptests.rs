//! Property-based tests for the graph substrate: beam-search invariants,
//! n-hop monotonicity, serialization round-trips on arbitrary graphs.

use proptest::prelude::*;
use rpq_data::Dataset;
use rpq_graph::{beam_search, DistanceEstimator, ExactEstimator, ProximityGraph, SearchScratch};

/// Strategy: a random connected-ish directed graph over `n` vertices plus a
/// matching 2-D dataset.
fn world(n: usize) -> impl Strategy<Value = (Dataset, ProximityGraph)> {
    let coords = proptest::collection::vec(-10.0f32..10.0, n * 2);
    let edges = proptest::collection::vec(proptest::collection::vec(0u32..n as u32, 1..5), n);
    (coords, edges).prop_map(move |(c, e)| {
        let data = Dataset::from_flat(2, c);
        let adj: Vec<Vec<u32>> = e
            .into_iter()
            .enumerate()
            .map(|(i, mut list)| {
                list.retain(|&u| u as usize != i);
                list.sort_unstable();
                list.dedup();
                // Chain edge keeps the graph connected so searches make
                // progress regardless of the random part.
                if i + 1 < n && !list.contains(&((i + 1) as u32)) {
                    list.push((i + 1) as u32);
                }
                list
            })
            .collect();
        (data, ProximityGraph::from_adjacency(adj, 0))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn beam_search_results_sorted_unique_and_bounded(
        (data, graph) in world(30),
        q in proptest::collection::vec(-10.0f32..10.0, 2),
        ef in 1usize..20,
        k in 1usize..12,
    ) {
        let est = ExactEstimator::new(&data, &q);
        let mut scratch = SearchScratch::new();
        let (res, stats) = beam_search(&graph, &est, ef, k, &mut scratch);
        prop_assert!(!res.is_empty());
        prop_assert!(res.len() <= k);
        for w in res.windows(2) {
            prop_assert!(w[0].dist <= w[1].dist, "results not sorted");
        }
        let mut ids: Vec<u32> = res.iter().map(|n| n.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), res.len(), "duplicate results");
        prop_assert!(stats.dist_comps >= res.len());
        // Every reported distance is the true estimator distance.
        for n in &res {
            let expect = est.distance(n.id);
            prop_assert!((n.dist - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn wider_beam_never_misses_the_returned_best(
        (data, graph) in world(25),
        q in proptest::collection::vec(-10.0f32..10.0, 2),
    ) {
        let est = ExactEstimator::new(&data, &q);
        let mut scratch = SearchScratch::new();
        let (narrow, _) = beam_search(&graph, &est, 2, 1, &mut scratch);
        let (wide, _) = beam_search(&graph, &est, 25, 1, &mut scratch);
        prop_assert!(wide[0].dist <= narrow[0].dist + 1e-6,
                     "wider beam found a worse best");
    }

    #[test]
    fn n_hop_neighborhoods_grow_monotonically((_, graph) in world(25), v in 0u32..25) {
        let mut prev = 0usize;
        for hops in 1..=4 {
            let hood = graph.n_hop_neighborhood(v, hops);
            prop_assert!(hood.len() >= prev, "neighborhood shrank at {hops} hops");
            prop_assert!(!hood.contains(&v));
            let mut s = hood.clone();
            s.sort_unstable();
            s.dedup();
            prop_assert_eq!(s.len(), hood.len(), "duplicates in neighborhood");
            prev = hood.len();
        }
    }

    #[test]
    fn serialization_roundtrips((_, graph) in world(20)) {
        let mut buf = Vec::new();
        graph.write_to(&mut buf).unwrap();
        let back = ProximityGraph::read_from(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back, graph);
    }

    #[test]
    fn truncated_serialization_never_panics((_, graph) in world(12), cut in 1usize..40) {
        let mut buf = Vec::new();
        graph.write_to(&mut buf).unwrap();
        let cut = cut.min(buf.len().saturating_sub(1));
        buf.truncate(buf.len() - cut);
        // Must return an error, not panic or produce a bogus graph.
        prop_assert!(ProximityGraph::read_from(&mut buf.as_slice()).is_err());
    }
}
